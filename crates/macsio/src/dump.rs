//! The MACSio main loop: marshal parts, dump, repeat.
//!
//! Reproduces the proxy behaviour the paper uses: `num_dumps` dumps, each
//! preceded by a `compute_time` phase, each writing the N-to-N (or MIF
//! group / SIF) file pattern of Fig. 3, with per-dump part sizes scaled by
//! `dataset_growth^k`. Bytes are written through a [`Vfs`], recorded in an
//! [`IoTracker`], and optionally timed against a [`StorageModel`] to
//! produce the burst timeline.
//!
//! The run's *shape* is an [`io_engine::Scenario`] program interpreted
//! over the dump stream: the legacy `--mode` spellings compile to
//! `write`, `write;restart`, and `write;readall`, while `--scenario`
//! opens the rest of the grammar — `fail@K;restart` re-reads the newest
//! dump mid-stream (recovery interleaved with the write bursts) and
//! `analyze_every:M:SEL` prices periodic in-run analysis reads. MACSio's
//! flat dump stream has no checkpoint or reorganization plane, so
//! `check@` ops and `,reorg` suffixes are rejected.

use crate::config::{FileMode, MacsioConfig};
use crate::marshal::{marshal_part, marshal_root};
use crate::mesh::MeshPart;
use io_engine::{IoBackend, Payload, Put, ReadSelection, ScenarioOp};
use iosim::{
    BurstScheduler, BurstTimeline, IoKey, IoKind, IoTracker, StorageAttach, StorageModel, Vfs,
};
use std::io;

/// Predicted on-disk bytes of one rank's data file at dump `k`, without
/// marshalling: exact for the `miftmpl` interface (JSON header measured,
/// binary payload arithmetic). Used by the model crate's calibration loop,
/// which would otherwise re-marshal gigabytes per candidate evaluation.
pub fn predicted_rank_bytes(cfg: &MacsioConfig, rank: usize, dump: u32) -> u64 {
    let nominal = cfg.grown_part_size(dump);
    let parts_per_rank: Vec<usize> = (0..cfg.nprocs).map(|r| cfg.parts_of_rank(r)).collect();
    let first_id: usize = parts_per_rank[..rank].iter().sum();
    let mut bytes = 0u64;
    for p in 0..parts_per_rank[rank] {
        let part = MeshPart::from_nominal_size(first_id + p, nominal, cfg.vars_per_part);
        bytes += crate::marshal::marshal_header_len(&part, dump, cfg.interface) as u64;
        bytes += match cfg.interface {
            crate::config::Interface::Miftmpl => part.payload_bytes(),
            // Text JSON width varies per value; approximate with the
            // measured mean width of the fixed {:.8e} format.
            crate::config::Interface::Json => (part.payload_bytes() as f64 / 8.0
                * crate::marshal::JSON_BYTES_PER_VALUE)
                .round() as u64,
        };
    }
    bytes
}

/// Predicted total bytes of one dump (all ranks' data + the root file).
pub fn predicted_dump_bytes(cfg: &MacsioConfig, dump: u32) -> u64 {
    let parts_per_rank: Vec<usize> = (0..cfg.nprocs).map(|r| cfg.parts_of_rank(r)).collect();
    let data: u64 = (0..cfg.nprocs)
        .map(|r| predicted_rank_bytes(cfg, r, dump))
        .sum();
    data + marshal_root(dump, cfg.nprocs, &parts_per_rank, cfg.meta_size).len() as u64
}

/// Outcome of a MACSio run.
#[derive(Clone, Debug, Default)]
pub struct MacsioReport {
    /// Canonical spelling of the scenario the run executed (the
    /// compiled `--mode` when no `--scenario` was given).
    pub scenario: String,
    /// Restart reads performed (mid-run recoveries plus trailing
    /// `restart`/`readall` reads; `analyze` reads are not restarts).
    pub restarts: u32,
    /// Total physical bytes written (data + root metadata + overhead).
    pub total_bytes: u64,
    /// Total logical (pre-compression) payload bytes — what the tracker
    /// records; equals `total_bytes` without a compression codec.
    pub logical_bytes: u64,
    /// Modeled codec CPU seconds across the run (0 without compression).
    pub codec_seconds: f64,
    /// Declared bookkeeping bytes inside `total_bytes` (aggregation index
    /// tables, compression sidecars).
    pub overhead_bytes: u64,
    /// Physical bytes per dump (data + root), indexed by dump.
    pub bytes_per_dump: Vec<u64>,
    /// Files written across the run.
    pub files_written: u64,
    /// Logical bytes read back in the restart/analysis phase (0 in
    /// write-only mode; the tracker's read-plane view, codec-invariant).
    pub read_bytes: u64,
    /// Physical bytes fetched from storage in the read phase (encoded
    /// chunks, index tables, sidecars).
    pub physical_read_bytes: u64,
    /// Physical files opened in the read phase.
    pub read_files: u64,
    /// Simulated seconds spent in the read phase (inside `wall_time`).
    pub read_wall: f64,
    /// Burst timeline (empty when no storage model was supplied).
    pub timeline: BurstTimeline,
    /// Bytes shipped over the modeled interconnect instead of through
    /// storage (0 for storage-backed backends).
    pub net_bytes: u64,
    /// Link-transfer seconds for `net_bytes` (inside `wall_time`).
    pub net_seconds: f64,
    /// Producer stall on consumer-window back-pressure (inside
    /// `wall_time`, disjoint from `net_seconds`).
    pub window_stall: f64,
    /// Final simulated wall time in seconds.
    pub wall_time: f64,
}

/// Runs MACSio through the backend × codec stack named in
/// `cfg.io_backend` / `cfg.compression`.
///
/// Tracker keys use `step = dump + 1` (matching the AMR side's 1-based
/// output counter), `level = 0` (MACSio has no level concept — the paper's
/// central granularity limitation), and `task = rank`. Tracker bytes are
/// logical (pre-compression), so the Eq. (1)/(2) calibration target is
/// codec-invariant; the report's physical bytes and burst timing shrink
/// with the codec's ratio.
pub fn run(
    cfg: &MacsioConfig,
    vfs: &dyn Vfs,
    tracker: &IoTracker,
    storage: Option<&StorageModel>,
) -> io::Result<MacsioReport> {
    run_attached(cfg, vfs, tracker, storage.into())
}

/// Like [`run`] but accepting any storage attachment — in particular a
/// [`iosim::FabricHandle`], which times the run's bursts on a shared
/// multi-tenant fabric instead of a private storage model.
pub fn run_attached(
    cfg: &MacsioConfig,
    vfs: &dyn Vfs,
    tracker: &IoTracker,
    storage: StorageAttach<'_>,
) -> io::Result<MacsioReport> {
    let mut backend = cfg
        .io_backend
        .build_with_codec(cfg.compression, vfs, tracker);
    run_with_backend_attached(cfg, backend.as_mut(), storage)
}

/// Runs MACSio through an explicit [`IoBackend`].
///
/// The MIF/SIF grouping of Fig. 3 shapes the *logical* file paths (which
/// ranks share a group file); the backend then decides the physical
/// layout — pass-through (file-per-process), BP-style aggregation, or
/// deferred burst-buffer staging — and the storage clock advances under
/// the matching [`BurstScheduler`] policy.
pub fn run_with_backend(
    cfg: &MacsioConfig,
    backend: &mut dyn IoBackend,
    storage: Option<&StorageModel>,
) -> io::Result<MacsioReport> {
    run_with_backend_attached(cfg, backend, storage.into())
}

/// [`run_with_backend`] generalized over the storage attachment: `None`
/// (untimed), a private [`StorageModel`], or a fabric tenant handle.
pub fn run_with_backend_attached(
    cfg: &MacsioConfig,
    backend: &mut dyn IoBackend,
    storage: StorageAttach<'_>,
) -> io::Result<MacsioReport> {
    cfg.validate();
    let scenario = cfg.effective_scenario();
    scenario.validate().map_err(io::Error::other)?;
    if scenario.check_every().is_some() {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "macsio has no checkpoint plane: 'check@' ops need the AMR engines",
        ));
    }
    if scenario.ops.iter().any(|op| {
        matches!(
            op,
            ScenarioOp::Analyze {
                reorganize: true,
                ..
            } | ScenarioOp::AnalyzeEvery {
                reorganize: true,
                ..
            }
        )
    }) {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "macsio has no reorganization plane: drop ',reorg' from analysis ops",
        ));
    }
    let fail = scenario.fail_step();
    if let Some(k) = fail {
        if k > u64::from(cfg.num_dumps) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "fail@{k} is beyond num_dumps {} (the failure would never happen)",
                    cfg.num_dumps
                ),
            ));
        }
    }
    let analyze_every = scenario.analyze_every_ops();
    let mut report = MacsioReport {
        scenario: scenario.name(),
        ..MacsioReport::default()
    };
    let mut clock = 0.0f64;
    let mut scheduler = storage.scheduler(backend.overlapped());

    // Global part ids: prefix sums of per-rank part counts.
    let parts_per_rank: Vec<usize> = (0..cfg.nprocs).map(|r| cfg.parts_of_rank(r)).collect();
    let mut first_part_id = vec![0usize; cfg.nprocs];
    for r in 1..cfg.nprocs {
        first_part_id[r] = first_part_id[r - 1] + parts_per_rank[r - 1];
    }

    for dump in 0..cfg.num_dumps {
        clock += cfg.compute_time;
        let nominal = cfg.grown_part_size(dump);
        let step_key = dump + 1;
        backend.begin_step(step_key, "/");

        // Marshal per-rank payloads.
        let mut rank_blobs: Vec<Vec<u8>> = Vec::with_capacity(cfg.nprocs);
        for rank in 0..cfg.nprocs {
            let mut blob = Vec::new();
            for p in 0..parts_per_rank[rank] {
                let part = MeshPart::from_nominal_size(
                    first_part_id[rank] + p,
                    nominal,
                    cfg.vars_per_part,
                );
                blob.extend_from_slice(&marshal_part(&part, dump, cfg.interface));
            }
            rank_blobs.push(blob);
        }

        // Group ranks into logical files; ranks in a group submit in baton
        // order, so the backend coalesces their chunks contiguously.
        let nfiles = cfg.parallel_file_mode.files_per_dump(cfg.nprocs);
        let group_size = cfg.nprocs.div_ceil(nfiles);
        for group in 0..nfiles {
            let ranks = (group * group_size)..((group + 1) * group_size).min(cfg.nprocs);
            if ranks.is_empty() {
                continue;
            }
            let path = match cfg.parallel_file_mode {
                FileMode::Sif => format!("/macsio_json_{dump:03}.json"),
                FileMode::Mif(_) => format!("/macsio_json_{group:05}_{dump:03}.json"),
            };
            for rank in ranks {
                backend.put(Put {
                    key: IoKey {
                        step: step_key,
                        level: 0,
                        task: rank as u32,
                    },
                    kind: IoKind::Data,
                    path: path.clone(),
                    payload: Payload::Bytes(std::mem::take(&mut rank_blobs[rank]).into()),
                })?;
            }
        }

        // Root metadata file (rank 0).
        let root = marshal_root(dump, cfg.nprocs, &parts_per_rank, cfg.meta_size);
        backend.put(Put {
            key: IoKey {
                step: step_key,
                level: 0,
                task: 0,
            },
            kind: IoKind::Metadata,
            path: format!("/macsio_json_root_{dump:03}.json"),
            payload: Payload::Bytes(root.into()),
        })?;

        let mut stats = backend.end_step()?;
        report.files_written += stats.files;

        // Timing: the codec's CPU cost lands on the application clock
        // whether or not a storage model times the drain. In-transit
        // dumps never reach the storage scheduler: encode, link
        // transfer, and window back-pressure are the whole cost.
        if backend.in_transit() {
            clock += stats.codec_seconds + stats.net_seconds + stats.window_stall;
            report.net_bytes += stats.net_bytes;
            report.net_seconds += stats.net_seconds;
            report.window_stall += stats.window_stall;
        } else if let Some(sched) = scheduler.as_mut() {
            let (burst, next_clock) = sched.submit_with_compute(
                step_key,
                clock,
                stats.codec_seconds,
                &mut stats.requests,
                stats.bytes,
            );
            report.timeline.push(burst);
            clock = next_clock;
        } else {
            clock += stats.codec_seconds;
        }
        report.bytes_per_dump.push(stats.bytes);
        report.total_bytes += stats.bytes;
        report.logical_bytes += stats.logical_bytes;
        report.codec_seconds += stats.codec_seconds;
        report.overhead_bytes += stats.overhead_bytes;

        // In-run analysis reads ride the dump stream: every M-th dump
        // is read back *between* write bursts, not after the campaign.
        for (every, sel, _) in &analyze_every {
            if u64::from(step_key).is_multiple_of(*every) {
                read_phase(
                    backend,
                    &mut scheduler,
                    &mut report,
                    &mut clock,
                    step_key,
                    sel,
                )?;
            }
        }
        // Mid-run failure: the crash loses the in-memory mesh, so the
        // recovery re-reads the newest dump in full before the stream
        // resumes. MACSio's state lives entirely in its dumps — no
        // marshal work is re-paid; the read burst is the price of the
        // failure.
        if fail == Some(u64::from(step_key)) {
            read_phase(
                backend,
                &mut scheduler,
                &mut report,
                &mut clock,
                step_key,
                &ReadSelection::Full,
            )?;
            report.restarts += 1;
        }
    }

    // Trailing read ops: restart-read the last dump, read every dump
    // back, or a selective analysis read — `restart`/`readall` fetch
    // only the chunks of `cfg.read_pattern` (the default `full` pattern
    // is the whole-dump restart), `analyze:` carries its own selection.
    // The backend barriers in-flight drains itself (read-after-write
    // consistency); the scheduler does the same on the simulated clock.
    if cfg.num_dumps > 0 {
        for op in scenario.trailing_ops() {
            match op {
                ScenarioOp::Restart => {
                    read_phase(
                        backend,
                        &mut scheduler,
                        &mut report,
                        &mut clock,
                        cfg.num_dumps,
                        &cfg.read_pattern,
                    )?;
                    report.restarts += 1;
                }
                ScenarioOp::ReadAll => {
                    for step in 1..=cfg.num_dumps {
                        read_phase(
                            backend,
                            &mut scheduler,
                            &mut report,
                            &mut clock,
                            step,
                            &cfg.read_pattern,
                        )?;
                        report.restarts += 1;
                    }
                }
                ScenarioOp::Analyze { sel, .. } => {
                    read_phase(
                        backend,
                        &mut scheduler,
                        &mut report,
                        &mut clock,
                        cfg.num_dumps,
                        &sel,
                    )?;
                }
                _ => unreachable!("trailing_ops yields only read ops"),
            }
        }
    }

    backend.close()?;
    // seal() both reports the final wall and retires the fabric tenant
    // (a no-op beyond the barrier for model-backed schedulers).
    report.wall_time = match &mut scheduler {
        Some(sched) => sched.seal(clock),
        None => clock,
    };
    Ok(report)
}

/// One read phase of the scenario interpreter: barriers any in-flight
/// drain, fetches the selected chunks of `step`, prices the read burst
/// (joining the timeline next to the write bursts so duty-cycle analysis
/// covers the whole run), and charges decode CPU after the bytes arrive.
fn read_phase(
    backend: &mut dyn IoBackend,
    scheduler: &mut Option<BurstScheduler<'_>>,
    report: &mut MacsioReport,
    clock: &mut f64,
    step: u32,
    sel: &ReadSelection,
) -> io::Result<()> {
    let read_start = match &scheduler {
        Some(sched) => sched.finish(*clock),
        None => *clock,
    };
    *clock = read_start;
    let read = backend.read_selection(step, "/", sel)?;
    report.read_bytes += read.stats.logical_bytes;
    report.physical_read_bytes += read.stats.bytes;
    report.read_files += read.stats.files;
    report.codec_seconds += read.stats.codec_seconds;
    let mut requests = read.stats.requests;
    if let Some(sched) = scheduler.as_mut() {
        let (burst, next_clock) = sched.submit_read(step, *clock, &mut requests, read.stats.bytes);
        report.timeline.push(burst);
        *clock = next_clock;
    }
    // Decoding happens after the bytes are in memory.
    *clock += read.stats.codec_seconds;
    report.read_wall += *clock - read_start;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Interface, RunMode};
    use iosim::MemFs;

    fn base_cfg() -> MacsioConfig {
        MacsioConfig {
            nprocs: 4,
            num_dumps: 3,
            part_size: 8 * 1024,
            ..Default::default()
        }
    }

    #[test]
    fn n_to_n_file_pattern_matches_fig3() {
        let cfg = base_cfg();
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let report = run(&cfg, &fs, &tracker, None).unwrap();
        // 4 data files + 1 root per dump, 3 dumps.
        assert_eq!(report.files_written, 15);
        let files = fs.list("/");
        assert!(files.contains(&"/macsio_json_00000_000.json".to_string()));
        assert!(files.contains(&"/macsio_json_00003_002.json".to_string()));
        assert!(files.contains(&"/macsio_json_root_000.json".to_string()));
        assert!(files.contains(&"/macsio_json_root_002.json".to_string()));
        assert_eq!(files.len(), 15);
    }

    #[test]
    fn streaming_backend_ships_dumps_over_the_link() {
        let mut cfg = base_cfg();
        cfg.io_backend = io_engine::BackendSpec::parse("streaming:100").unwrap();
        cfg.compute_time = 1.5;
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let report = run(&cfg, &fs, &tracker, None).unwrap();
        // The storage plane stays untouched; the tracker's logical plane
        // matches the stored run's exactly.
        assert_eq!(report.total_bytes, 0);
        assert_eq!(report.files_written, 0);
        assert!(fs.list("/").is_empty(), "nothing reaches the filesystem");
        let stored_tracker = IoTracker::new();
        let stored = run(&base_cfg(), &MemFs::new(), &stored_tracker, None).unwrap();
        assert_eq!(tracker.export(), stored_tracker.export());
        assert_eq!(report.logical_bytes, stored.logical_bytes);
        // The network plane is priced instead, inside wall_time.
        assert_eq!(report.net_bytes, report.logical_bytes);
        assert!(report.net_seconds > 0.0);
        assert_eq!(report.window_stall, 0.0, "unbounded window");
        let compute = 3.0 * 1.5;
        assert!(
            (report.wall_time - (compute + report.net_seconds + report.codec_seconds)).abs() < 1e-9,
            "streamed wall = compute + transfer: {}",
            report.wall_time
        );
    }

    #[test]
    fn growth_inflates_dumps() {
        let mut cfg = base_cfg();
        cfg.dataset_growth = 1.05;
        cfg.num_dumps = 5;
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let report = run(&cfg, &fs, &tracker, None).unwrap();
        for w in report.bytes_per_dump.windows(2) {
            assert!(w[1] >= w[0], "dump sizes must be non-decreasing: {w:?}");
        }
        let first = report.bytes_per_dump[0] as f64;
        let last = *report.bytes_per_dump.last().unwrap() as f64;
        assert!(last / first > 1.15, "5 dumps at 5% growth compound");
    }

    #[test]
    fn tracker_records_per_rank_bytes() {
        let cfg = base_cfg();
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        run(&cfg, &fs, &tracker, None).unwrap();
        assert_eq!(tracker.steps(), vec![1, 2, 3]);
        let per_task = tracker.bytes_per_task_of(1, 0, IoKind::Data);
        assert_eq!(per_task.len(), 4);
        // Homogeneous per-rank loads (the paper's observation about
        // MACSio's granularity).
        assert!(per_task.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn sif_writes_one_data_file_per_dump() {
        let mut cfg = base_cfg();
        cfg.parallel_file_mode = FileMode::Sif;
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let report = run(&cfg, &fs, &tracker, None).unwrap();
        assert_eq!(report.files_written, 6); // 1 data + 1 root, 3 dumps
        assert!(fs.list("/").contains(&"/macsio_json_000.json".to_string()));
    }

    #[test]
    fn mif_grouping_reduces_file_count() {
        let mut cfg = base_cfg();
        cfg.nprocs = 8;
        cfg.parallel_file_mode = FileMode::Mif(2);
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let report = run(&cfg, &fs, &tracker, None).unwrap();
        assert_eq!(report.files_written, 9); // 2 data + 1 root per dump
                                             // All 8 ranks still accounted in the tracker.
        assert_eq!(tracker.bytes_per_task(1, 0).len(), 8);
    }

    #[test]
    fn total_bytes_match_vfs() {
        let cfg = base_cfg();
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let report = run(&cfg, &fs, &tracker, None).unwrap();
        assert_eq!(report.total_bytes, fs.total_bytes());
        assert_eq!(
            report.total_bytes,
            report.bytes_per_dump.iter().sum::<u64>()
        );
    }

    #[test]
    fn storage_model_produces_bursty_timeline() {
        let mut cfg = base_cfg();
        cfg.compute_time = 10.0;
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let model = StorageModel::ideal(4, 1e6);
        let report = run(&cfg, &fs, &tracker, Some(&model)).unwrap();
        assert_eq!(report.timeline.len(), 3);
        assert!(report.timeline.duty_cycle() < 0.5, "compute dominates");
        assert!(report.wall_time > 30.0);
        // Bursts are ordered in time.
        let bursts = report.timeline.bursts();
        assert!(bursts.windows(2).all(|w| w[1].t_start >= w[0].t_end));
    }

    #[test]
    fn compression_shrinks_physical_keeps_logical() {
        let mut cfg = base_cfg();
        let fs_id = MemFs::new();
        let t_id = IoTracker::new();
        let r_id = run(&cfg, &fs_id, &t_id, None).unwrap();
        assert_eq!(r_id.logical_bytes, r_id.total_bytes, "identity: equal");
        assert_eq!(r_id.codec_seconds, 0.0);

        cfg.compression = io_engine::CodecSpec::LossyQuant(8);
        let fs_q = MemFs::new();
        let t_q = IoTracker::new();
        let r_q = run(&cfg, &fs_q, &t_q, None).unwrap();
        // The calibration target (tracker) is codec-invariant.
        assert_eq!(t_id.export(), t_q.export());
        assert_eq!(r_q.logical_bytes, r_id.logical_bytes);
        // Physical volume shrinks and the CPU cost is accounted.
        assert!(r_q.total_bytes < r_id.total_bytes);
        assert_eq!(r_q.total_bytes, fs_q.total_bytes());
        assert!(r_q.codec_seconds > 0.0);
        assert!(r_q.wall_time >= r_q.codec_seconds);
        // One sidecar per dump rides along.
        assert_eq!(r_q.files_written, r_id.files_written + cfg.num_dumps as u64);
    }

    #[test]
    fn restart_mode_reads_the_last_dump_back() {
        let mut cfg = base_cfg();
        cfg.mode = RunMode::Restart;
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let report = run(&cfg, &fs, &tracker, None).unwrap();
        // The restart reads exactly the last dump's logical bytes.
        let last_dump_logical = tracker.bytes_per_step()[&cfg.num_dumps];
        assert_eq!(report.read_bytes, last_dump_logical);
        assert_eq!(tracker.total_read_bytes(), last_dump_logical);
        assert_eq!(
            tracker
                .read_bytes_per_step()
                .keys()
                .copied()
                .collect::<Vec<_>>(),
            vec![cfg.num_dumps]
        );
        // Identity codec, fpp: physical read == logical read.
        assert_eq!(report.physical_read_bytes, report.read_bytes);
        assert_eq!(report.read_files, 5, "4 data files + 1 root");
    }

    #[test]
    fn wr_mode_reads_every_dump_back() {
        let mut cfg = base_cfg();
        cfg.mode = RunMode::WriteRead;
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let report = run(&cfg, &fs, &tracker, None).unwrap();
        assert_eq!(report.read_bytes, report.logical_bytes, "full read-back");
        assert_eq!(tracker.total_read_bytes(), tracker.total_bytes());
        assert_eq!(report.read_files, report.files_written);
    }

    #[test]
    fn restart_read_is_timed_against_storage() {
        let mut cfg = base_cfg();
        cfg.mode = RunMode::Restart;
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let model = StorageModel::ideal(2, 1e6);
        let report = run(&cfg, &fs, &tracker, Some(&model)).unwrap();
        assert!(report.read_wall > 0.0, "reads cost simulated time");
        assert!(report.wall_time >= report.read_wall);
        // The read burst joins the timeline next to the write bursts.
        assert_eq!(
            report.timeline.len(),
            cfg.num_dumps as usize + 1,
            "write bursts + one restart read burst"
        );
        // Write-only run of the same config is strictly faster.
        let mut w = base_cfg();
        w.mode = RunMode::Write;
        let fsw = MemFs::new();
        let tw = IoTracker::new();
        let wr = run(&w, &fsw, &tw, Some(&model)).unwrap();
        assert!(report.wall_time > wr.wall_time);
        assert_eq!(wr.read_wall, 0.0);
    }

    #[test]
    fn read_pattern_narrows_the_restart_fetch() {
        use io_engine::ReadSelection;
        let mut cfg = base_cfg();
        cfg.nprocs = 8;
        cfg.mode = RunMode::Restart;
        let fs_full = MemFs::new();
        let t_full = IoTracker::new();
        let full = run(&cfg, &fs_full, &t_full, None).unwrap();

        // A task box covering half the world fetches half the data.
        cfg.read_pattern = ReadSelection::parse("box:0,0-3").unwrap();
        let fs_box = MemFs::new();
        let t_box = IoTracker::new();
        let boxed = run(&cfg, &fs_box, &t_box, None).unwrap();
        assert!(boxed.read_bytes < full.read_bytes);
        assert!(boxed.physical_read_bytes < full.physical_read_bytes);
        assert_eq!(
            boxed.read_bytes,
            t_box.total_read_bytes(),
            "tracker read plane sees the selection"
        );
        // 8 data chunks per dump: the box matches tasks 0..=3 (data is
        // level 0); the root metadata chunk (task 0) matches too.
        assert_eq!(t_box.total_read_records(), 5);

        // A field pattern naming the root file fetches only metadata.
        cfg.read_pattern = ReadSelection::Field("root".into());
        let fs_f = MemFs::new();
        let t_f = IoTracker::new();
        let fielded = run(&cfg, &fs_f, &t_f, None).unwrap();
        assert_eq!(
            fielded.read_bytes,
            t_f.total_read_bytes_of(iosim::IoKind::Metadata),
            "only the root metadata matched"
        );
        assert_eq!(fielded.read_files, 1);
    }

    #[test]
    fn restart_round_trips_across_backend_codec_matrix() {
        use io_engine::{BackendSpec, CodecSpec};
        // The wr-mode read phase re-reads every dump; with a lossless
        // codec the logical read totals must equal the write totals for
        // every backend × codec combination.
        for backend in [
            BackendSpec::FilePerProcess,
            BackendSpec::Aggregated(2),
            BackendSpec::Deferred(1),
        ] {
            for codec in [CodecSpec::Identity, CodecSpec::Rle(2.0)] {
                let cfg = MacsioConfig {
                    nprocs: 4,
                    num_dumps: 2,
                    part_size: 4 * 1024,
                    io_backend: backend,
                    compression: codec,
                    mode: RunMode::WriteRead,
                    ..Default::default()
                };
                let fs = MemFs::new();
                let tracker = IoTracker::new();
                let report = run(&cfg, &fs, &tracker, None).unwrap();
                let label = format!("{}/{}", backend.name(), codec.name());
                assert_eq!(
                    tracker.total_read_bytes(),
                    tracker.total_bytes(),
                    "read plane drift in {label}"
                );
                assert_eq!(report.read_bytes, report.logical_bytes, "{label}");
            }
        }
    }

    #[test]
    fn scenario_path_reproduces_mode_reports_exactly() {
        use io_engine::Scenario;
        // `--mode restart` and `--scenario write;restart` (and wr /
        // write;readall) must be the same run: every report column and
        // the tracker agree.
        for (mode, spelling) in [
            (RunMode::Write, "write"),
            (RunMode::Restart, "write;restart"),
            (RunMode::WriteRead, "write;readall"),
        ] {
            let mut by_mode_cfg = base_cfg();
            by_mode_cfg.mode = mode;
            let fs_m = MemFs::new();
            let t_m = IoTracker::new();
            let model = StorageModel::ideal(2, 1e6);
            let by_mode = run(&by_mode_cfg, &fs_m, &t_m, Some(&model)).unwrap();

            let mut by_scenario_cfg = base_cfg();
            by_scenario_cfg.scenario = Some(Scenario::parse(spelling).unwrap());
            let fs_s = MemFs::new();
            let t_s = IoTracker::new();
            let by_scenario = run(&by_scenario_cfg, &fs_s, &t_s, Some(&model)).unwrap();

            assert_eq!(by_mode.scenario, spelling);
            assert_eq!(by_scenario.scenario, spelling);
            assert_eq!(t_m.export(), t_s.export(), "{spelling}: write plane");
            assert_eq!(t_m.export_reads(), t_s.export_reads(), "{spelling}");
            assert_eq!(by_mode.total_bytes, by_scenario.total_bytes);
            assert_eq!(by_mode.read_bytes, by_scenario.read_bytes);
            assert_eq!(by_mode.read_files, by_scenario.read_files);
            assert_eq!(by_mode.read_wall, by_scenario.read_wall, "{spelling}");
            assert_eq!(by_mode.wall_time, by_scenario.wall_time, "{spelling}");
            assert_eq!(by_mode.timeline, by_scenario.timeline);
        }
    }

    #[test]
    fn fail_restart_scenario_recovers_mid_stream() {
        use io_engine::Scenario;
        let mut cfg = base_cfg();
        cfg.compute_time = 10.0;
        cfg.scenario = Some(Scenario::fail_restart(2));
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let model = StorageModel::ideal(4, 1e6);
        let report = run(&cfg, &fs, &tracker, Some(&model)).unwrap();
        assert_eq!(report.restarts, 1);
        // The recovery read of dump 2 sits *between* the write bursts of
        // dumps 2 and 3, not after the campaign.
        let steps: Vec<u32> = report.timeline.bursts().iter().map(|b| b.step).collect();
        assert_eq!(steps, vec![1, 2, 2, 3], "write, write, recovery, write");
        // The recovery reads exactly dump 2's logical volume; no dump is
        // written twice.
        assert_eq!(report.read_bytes, tracker.bytes_per_step()[&2]);
        let mut clean_cfg = base_cfg();
        clean_cfg.compute_time = 10.0;
        let fs_c = MemFs::new();
        let t_c = IoTracker::new();
        let clean = run(&clean_cfg, &fs_c, &t_c, Some(&model)).unwrap();
        assert_eq!(tracker.export(), t_c.export(), "write plane untouched");
        assert!(report.wall_time > clean.wall_time, "the failure is priced");
    }

    #[test]
    fn in_run_analysis_scenario_interleaves_selective_reads() {
        use io_engine::Scenario;
        let mut cfg = base_cfg();
        cfg.num_dumps = 4;
        cfg.compute_time = 5.0;
        cfg.scenario = Some(Scenario::parse("write;analyze_every:2:field:root").unwrap());
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let model = StorageModel::ideal(4, 1e6);
        let report = run(&cfg, &fs, &tracker, Some(&model)).unwrap();
        // Dumps 2 and 4 are analyzed in-run.
        let steps: Vec<u32> = report.timeline.bursts().iter().map(|b| b.step).collect();
        assert_eq!(steps, vec![1, 2, 2, 3, 4, 4]);
        assert_eq!(report.restarts, 0, "analysis reads are not restarts");
        // The field selection narrows each read to the root metadata.
        assert_eq!(
            report.read_bytes,
            tracker.total_read_bytes_of(IoKind::Metadata)
        );
        assert_eq!(report.read_files, 2);
    }

    #[test]
    fn unsupported_scenario_ops_are_rejected() {
        use io_engine::Scenario;
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut cfg = base_cfg();
        // No checkpoint plane.
        cfg.scenario = Some(Scenario::parse("write;check@2").unwrap());
        assert!(run(&cfg, &fs, &tracker, None).is_err());
        // No reorganization plane.
        cfg.scenario = Some(Scenario::parse("write;analyze:field:root,reorg").unwrap());
        assert!(run(&cfg, &fs, &tracker, None).is_err());
        // A failure after the last dump can never happen.
        cfg.scenario = Some(Scenario::fail_restart(99));
        assert!(run(&cfg, &fs, &tracker, None).is_err());
    }

    #[test]
    fn meta_size_grows_root_files() {
        let fs_a = MemFs::new();
        let fs_b = MemFs::new();
        let ta = IoTracker::new();
        let tb = IoTracker::new();
        let mut cfg = base_cfg();
        run(&cfg, &fs_a, &ta, None).unwrap();
        cfg.meta_size = 1000;
        run(&cfg, &fs_b, &tb, None).unwrap();
        assert_eq!(
            tb.total_bytes_of(IoKind::Metadata),
            ta.total_bytes_of(IoKind::Metadata) + 3 * 4 * 1000
        );
        // Data unaffected.
        assert_eq!(
            ta.total_bytes_of(IoKind::Data),
            tb.total_bytes_of(IoKind::Data)
        );
    }

    #[test]
    fn json_interface_writes_more_bytes_than_miftmpl() {
        let fs_a = MemFs::new();
        let fs_b = MemFs::new();
        let t = IoTracker::new();
        let mut cfg = base_cfg();
        run(&cfg, &fs_a, &t, None).unwrap();
        cfg.interface = Interface::Json;
        run(&cfg, &fs_b, &t, None).unwrap();
        assert!(fs_b.total_bytes() > fs_a.total_bytes());
    }

    #[test]
    fn predictor_matches_actual_run_exactly_for_miftmpl() {
        let mut cfg = base_cfg();
        cfg.nprocs = 3;
        cfg.avg_num_parts = 1.5;
        cfg.vars_per_part = 2;
        cfg.dataset_growth = 1.07;
        cfg.num_dumps = 4;
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let report = run(&cfg, &fs, &tracker, None).unwrap();
        for dump in 0..cfg.num_dumps {
            assert_eq!(
                predicted_dump_bytes(&cfg, dump),
                report.bytes_per_dump[dump as usize],
                "dump {dump}"
            );
            let per_task = tracker.bytes_per_task_of(dump + 1, 0, IoKind::Data);
            #[allow(clippy::needless_range_loop)] // rank indexes tracker + predictor
            for rank in 0..cfg.nprocs {
                assert_eq!(
                    predicted_rank_bytes(&cfg, rank, dump),
                    per_task[rank],
                    "rank {rank} dump {dump}"
                );
            }
        }
    }

    #[test]
    fn predictor_is_close_for_text_json() {
        let mut cfg = base_cfg();
        cfg.interface = Interface::Json;
        cfg.num_dumps = 1;
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let report = run(&cfg, &fs, &tracker, None).unwrap();
        let predicted = predicted_dump_bytes(&cfg, 0) as f64;
        let actual = report.bytes_per_dump[0] as f64;
        assert!(
            (predicted - actual).abs() / actual < 0.05,
            "predicted {predicted} vs actual {actual}"
        );
    }

    #[test]
    fn on_disk_bytes_track_nominal_request() {
        // The Eq. (3) premise: per-rank on-disk bytes ~ part_size.
        let mut cfg = base_cfg();
        cfg.part_size = 1_000_000;
        cfg.num_dumps = 1;
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        run(&cfg, &fs, &tracker, None).unwrap();
        let per_task = tracker.bytes_per_task(1, 0);
        for &b in &per_task {
            let ratio = b as f64 / cfg.part_size as f64;
            assert!((1.0..1.05).contains(&ratio), "ratio {ratio}");
        }
    }
}
