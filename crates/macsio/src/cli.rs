//! MACSio-compatible command-line parsing.
//!
//! Accepts the flag spellings of Table II (`--interface`,
//! `--parallel_file_mode MIF n | SIF`, `--num_dumps`, `--part_size`,
//! `--avg_num_parts`, `--vars_per_part`, `--compute_time`, `--meta_size`,
//! `--dataset_growth`) plus `--nprocs` standing in for `jsrun -n`.

use crate::config::{FileMode, Interface, MacsioConfig, RunMode};
use io_engine::{BackendSpec, CodecSpec, ReadSelection, Scenario};

/// One-screen flag reference (printed by the `macsio` binary on bad
/// usage). Table II flags plus the workspace extensions, each with its
/// default (audited by a test against the parser: every flag
/// `parse_args` accepts appears here).
pub fn usage() -> &'static str {
    "usage: macsio [flags]\n\
     \n\
     Table II flags:\n\
       --interface miftmpl|json        output interface (default: miftmpl)\n\
       --parallel_file_mode MIF n|SIF  file grouping; MIF 0 is clamped to 1\n\
                                       (default: MIF nprocs, the N-to-N pattern)\n\
       --num_dumps N                   dumps to marshal (default: 10)\n\
       --part_size BYTES[K|M|G]        nominal bytes per part variable\n\
                                       (default: 80000)\n\
       --avg_num_parts X               mesh parts per task, fractional ok\n\
                                       (default: 1)\n\
       --vars_per_part N               variables per part (default: 1)\n\
       --compute_time SECONDS          simulated compute between dumps\n\
                                       (default: 0)\n\
       --meta_size BYTES[K|M|G]        extra metadata per task per dump\n\
                                       (default: 0)\n\
       --dataset_growth X              per-dump part-size multiplier\n\
                                       (default: 1)\n\
     \n\
     workspace extensions:\n\
       --nprocs N | -n N               simulated MPI world size (default: 1)\n\
       --seed N                        synthetic-field RNG seed\n\
                                       (default: 5062979 = 0x4D4143 \"MAC\")\n\
       --io_backend SPEC               write path: fpp (N-to-N, default),\n\
                                       agg:<ratio> (BP-style two-level\n\
                                       aggregation), deferred[:<workers>]\n\
                                       (burst-buffer staging, async drain)\n\
       --compression SPEC              in-situ codec for data puts:\n\
                                       identity (default), rle[:<ratio>]\n\
                                       (lossless run-length), quant[:<bits>]\n\
                                       (block-wise lossy quantization)\n\
       --mode write|restart|wr         write-only (default), write then\n\
                                       restart-read the last dump, or write\n\
                                       then read every dump back\n\
       --read_pattern SPEC             what restart/wr reads fetch: full\n\
                                       (default), level:<l>, field:<path\n\
                                       substring>, box:<l0>-<l1>,<t0>-<t1>\n\
                                       (inclusive level,task key ranges)\n\
       --scenario PROGRAM              workload program overriding --mode:\n\
                                       ';'-joined ops among write, fail@K,\n\
                                       restart, readall, analyze:SEL, and\n\
                                       analyze_every:M:SEL (default: --mode\n\
                                       compiled, e.g. wr -> write;readall)\n\
     \n\
     binary flags (macsio executable only):\n\
       --output_dir DIR                write real files under DIR\n\
                                       (default: in-memory filesystem)\n\
       --summit_scale X                attach the Summit/Alpine storage\n\
                                       timing model at scale X in (0,1]\n\
                                       (default: no timing model)\n"
}

/// Parses a MACSio command line into a configuration.
///
/// Sizes accept `K`/`M`/`G` suffixes (powers of 1000, as MACSio does).
pub fn parse_args<I, S>(args: I) -> Result<MacsioConfig, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let args: Vec<String> = args.into_iter().map(|s| s.as_ref().to_string()).collect();
    let mut cfg = MacsioConfig::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let next = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag {
            "--interface" => cfg.interface = Interface::parse(&next(&mut i)?)?,
            "--parallel_file_mode" => {
                let mode = next(&mut i)?;
                cfg.parallel_file_mode = match mode.as_str() {
                    "SIF" | "sif" => FileMode::Sif,
                    "MIF" | "mif" => {
                        let n = next(&mut i)?;
                        FileMode::mif(n.parse().map_err(|_| format!("bad MIF file count '{n}'"))?)
                    }
                    other => return Err(format!("unknown file mode '{other}'")),
                };
            }
            "--num_dumps" => {
                cfg.num_dumps = parse_num(&next(&mut i)?)? as u32;
            }
            "--part_size" => {
                cfg.part_size = parse_size(&next(&mut i)?)?;
            }
            "--avg_num_parts" => {
                let v = next(&mut i)?;
                cfg.avg_num_parts = v.parse().map_err(|_| format!("bad avg_num_parts '{v}'"))?;
            }
            "--vars_per_part" => {
                cfg.vars_per_part = parse_num(&next(&mut i)?)? as usize;
            }
            "--compute_time" => {
                let v = next(&mut i)?;
                cfg.compute_time = v.parse().map_err(|_| format!("bad compute_time '{v}'"))?;
            }
            "--meta_size" => {
                cfg.meta_size = parse_size(&next(&mut i)?)?;
            }
            "--dataset_growth" => {
                let v = next(&mut i)?;
                cfg.dataset_growth = v.parse().map_err(|_| format!("bad dataset_growth '{v}'"))?;
            }
            "--io_backend" => {
                cfg.io_backend = BackendSpec::parse(&next(&mut i)?)?;
            }
            "--compression" => {
                cfg.compression = CodecSpec::parse(&next(&mut i)?)?;
            }
            "--mode" => {
                cfg.mode = RunMode::parse(&next(&mut i)?)?;
            }
            "--read_pattern" => {
                cfg.read_pattern = ReadSelection::parse(&next(&mut i)?)?;
            }
            "--scenario" => {
                cfg.scenario = Some(Scenario::parse(&next(&mut i)?)?);
            }
            "--nprocs" | "-n" => {
                cfg.nprocs = parse_num(&next(&mut i)?)? as usize;
            }
            "--seed" => {
                cfg.seed = parse_num(&next(&mut i)?)?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    cfg.validate();
    Ok(cfg)
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("bad number '{s}'"))
}

fn parse_size(s: &str) -> Result<u64, String> {
    let (digits, mult) = match s.chars().last() {
        Some('K' | 'k') => (&s[..s.len() - 1], 1_000u64),
        Some('M' | 'm') => (&s[..s.len() - 1], 1_000_000),
        Some('G' | 'g') => (&s[..s.len() - 1], 1_000_000_000),
        _ => (s, 1),
    };
    let base: f64 = digits.parse().map_err(|_| format!("bad size '{s}'"))?;
    Ok((base * mult as f64).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_listing_shape() {
        let cfg = parse_args([
            "--nprocs",
            "32",
            "--interface",
            "miftmpl",
            "--parallel_file_mode",
            "MIF",
            "32",
            "--num_dumps",
            "10",
            "--part_size",
            "1550000",
            "--avg_num_parts",
            "1",
            "--vars_per_part",
            "1",
            "--compute_time",
            "0.5",
            "--meta_size",
            "1K",
            "--dataset_growth",
            "1.013075",
        ])
        .unwrap();
        assert_eq!(cfg.nprocs, 32);
        assert_eq!(cfg.interface, Interface::Miftmpl);
        assert_eq!(cfg.parallel_file_mode, FileMode::Mif(32));
        assert_eq!(cfg.num_dumps, 10);
        assert_eq!(cfg.part_size, 1_550_000);
        assert_eq!(cfg.meta_size, 1000);
        assert!((cfg.dataset_growth - 1.013075).abs() < 1e-12);
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("10K").unwrap(), 10_000);
        assert_eq!(parse_size("2.5M").unwrap(), 2_500_000);
        assert_eq!(parse_size("1G").unwrap(), 1_000_000_000);
        assert_eq!(parse_size("123").unwrap(), 123);
        assert!(parse_size("abc").is_err());
    }

    #[test]
    fn sif_mode() {
        let cfg = parse_args(["--parallel_file_mode", "SIF"]).unwrap();
        assert_eq!(cfg.parallel_file_mode, FileMode::Sif);
    }

    #[test]
    fn mif_zero_normalizes_at_parse_time() {
        let cfg = parse_args(["--parallel_file_mode", "MIF", "0"]).unwrap();
        assert_eq!(cfg.parallel_file_mode, FileMode::Mif(1));
    }

    #[test]
    fn io_backend_flag_parses() {
        let cfg = parse_args(["--io_backend", "agg:16"]).unwrap();
        assert_eq!(cfg.io_backend, BackendSpec::Aggregated(16));
        let cfg = parse_args(["--io_backend", "deferred"]).unwrap();
        assert_eq!(cfg.io_backend, BackendSpec::Deferred(1));
        assert!(parse_args(["--io_backend", "hdf5"]).is_err());
    }

    #[test]
    fn usage_names_the_backend_selector() {
        assert!(usage().contains("--io_backend"));
        assert!(usage().contains("agg:<ratio>"));
        assert!(usage().contains("deferred"));
    }

    #[test]
    fn compression_flag_parses() {
        let cfg = parse_args(["--compression", "quant:4"]).unwrap();
        assert_eq!(cfg.compression, CodecSpec::LossyQuant(4));
        let cfg = parse_args(["--compression", "rle"]).unwrap();
        assert_eq!(cfg.compression, CodecSpec::Rle(2.0));
        assert!(parse_args(["--compression", "zstd"]).is_err());
        assert!(usage().contains("--compression"));
    }

    #[test]
    fn mode_flag_parses() {
        let cfg = parse_args(["--mode", "restart"]).unwrap();
        assert_eq!(cfg.mode, RunMode::Restart);
        let cfg = parse_args(["--mode", "wr"]).unwrap();
        assert_eq!(cfg.mode, RunMode::WriteRead);
        assert!(parse_args(["--mode", "append"]).is_err());
        assert!(usage().contains("--mode"));
    }

    #[test]
    fn read_pattern_flag_parses() {
        let cfg = parse_args(["--mode", "restart", "--read_pattern", "field:root"]).unwrap();
        assert_eq!(cfg.read_pattern, ReadSelection::Field("root".into()));
        let cfg = parse_args(["--read_pattern", "box:0,1-3"]).unwrap();
        assert_eq!(cfg.read_pattern, ReadSelection::parse("box:0,1-3").unwrap());
        assert!(parse_args(["--read_pattern", "stripe:1"]).is_err());
    }

    #[test]
    fn usage_documents_every_parser_flag_with_defaults() {
        // The audit the help text promises: every flag the parser
        // accepts (and the binary-local flags) appears in usage(), and
        // every defaulted knob names its default.
        let u = usage();
        for flag in [
            "--interface",
            "--parallel_file_mode",
            "--num_dumps",
            "--part_size",
            "--avg_num_parts",
            "--vars_per_part",
            "--compute_time",
            "--meta_size",
            "--dataset_growth",
            "--nprocs",
            "-n N",
            "--seed",
            "--io_backend",
            "--compression",
            "--mode",
            "--read_pattern",
            "--scenario",
            "--output_dir",
            "--summit_scale",
        ] {
            assert!(u.contains(flag), "usage() is missing {flag}");
        }
        let cfg = MacsioConfig::default();
        for default in [
            "default: miftmpl".to_string(),
            "default: MIF nprocs".to_string(),
            format!("default: {}", cfg.num_dumps),
            format!("default: {}", cfg.part_size),
            format!("default: {}", cfg.vars_per_part),
            format!("default: {}", cfg.nprocs),
            format!("default: {} = 0x4D4143", cfg.seed),
            "full\n".to_string(),
        ] {
            assert!(u.contains(&default), "usage() is missing '{default}'");
        }
        assert!(u.contains("fpp (N-to-N, default)"));
        assert!(u.contains("identity (default)"));
        assert!(u.contains("write-only (default)"));
    }

    #[test]
    fn scenario_flag_parses() {
        let cfg = parse_args(["--scenario", "write;fail@3;restart"]).unwrap();
        assert_eq!(cfg.scenario, Some(Scenario::fail_restart(3)));
        let cfg = parse_args(["--scenario", "write;analyze_every:2:field:root"]).unwrap();
        assert_eq!(
            cfg.scenario.unwrap().name(),
            "write;analyze_every:2:field:root"
        );
        // Malformed programs are rejected at parse time.
        assert!(parse_args(["--scenario", "write;fail@3"]).is_err());
        assert!(parse_args(["--scenario", "explode"]).is_err());
    }

    #[test]
    fn unknown_flag_is_rejected() {
        assert!(parse_args(["--bogus", "1"]).is_err());
    }

    #[test]
    fn missing_value_is_rejected() {
        assert!(parse_args(["--num_dumps"]).is_err());
    }
}
