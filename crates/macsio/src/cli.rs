//! MACSio-compatible command-line parsing.
//!
//! Accepts the flag spellings of Table II (`--interface`,
//! `--parallel_file_mode MIF n | SIF`, `--num_dumps`, `--part_size`,
//! `--avg_num_parts`, `--vars_per_part`, `--compute_time`, `--meta_size`,
//! `--dataset_growth`) plus `--nprocs` standing in for `jsrun -n`.

use crate::config::{FileMode, Interface, MacsioConfig, RunMode};
use io_engine::grammar::{disambiguate_tags, MatrixShape, TomlDoc};
use io_engine::{BackendSpec, CodecSpec, ReadSelection, Scenario};

/// One-screen flag reference (printed by the `macsio` binary on bad
/// usage). Table II flags plus the workspace extensions, each with its
/// default (audited by a test against the parser: every flag
/// `parse_args` accepts appears here).
pub fn usage() -> &'static str {
    "usage: macsio [flags]\n\
     \n\
     Table II flags:\n\
       --interface miftmpl|json        output interface (default: miftmpl)\n\
       --parallel_file_mode MIF n|SIF  file grouping; MIF 0 is clamped to 1\n\
                                       (default: MIF nprocs, the N-to-N pattern)\n\
       --num_dumps N                   dumps to marshal (default: 10)\n\
       --part_size BYTES[K|M|G]        nominal bytes per part variable\n\
                                       (default: 80000)\n\
       --avg_num_parts X               mesh parts per task, fractional ok\n\
                                       (default: 1)\n\
       --vars_per_part N               variables per part (default: 1)\n\
       --compute_time SECONDS          simulated compute between dumps\n\
                                       (default: 0)\n\
       --meta_size BYTES[K|M|G]        extra metadata per task per dump\n\
                                       (default: 0)\n\
       --dataset_growth X              per-dump part-size multiplier\n\
                                       (default: 1)\n\
     \n\
     workspace extensions:\n\
       --nprocs N | -n N               simulated MPI world size (default: 1)\n\
       --seed N                        synthetic-field RNG seed\n\
                                       (default: 5062979 = 0x4D4143 \"MAC\")\n\
       --io_backend SPEC               write path: fpp (N-to-N, default),\n\
                                       agg:<ratio> (BP-style two-level\n\
                                       aggregation), deferred[:<workers>]\n\
                                       (burst-buffer staging, async drain),\n\
                                       streaming[:<link>[:<win>[:<cons>]]]\n\
                                       (in-transit: dumps ship over a\n\
                                       modeled link, no files written)\n\
       --compression SPEC              in-situ codec for data puts:\n\
                                       identity (default), rle[:<ratio>]\n\
                                       (lossless run-length), quant[:<bits>]\n\
                                       (block-wise lossy quantization)\n\
       --mode write|restart|wr         write-only (default), write then\n\
                                       restart-read the last dump, or write\n\
                                       then read every dump back\n\
       --read_pattern SPEC             what restart/wr reads fetch: full\n\
                                       (default), level:<l>, field:<path\n\
                                       substring>, box:<l0>-<l1>,<t0>-<t1>\n\
                                       (inclusive level,task key ranges)\n\
       --scenario PROGRAM              workload program overriding --mode:\n\
                                       ';'-joined ops among write, fail@K,\n\
                                       restart, readall, analyze:SEL, and\n\
                                       analyze_every:M:SEL (default: --mode\n\
                                       compiled, e.g. wr -> write;readall)\n\
     \n\
     binary flags (macsio executable only):\n\
       --output_dir DIR                write real files under DIR\n\
                                       (default: in-memory filesystem)\n\
       --summit_scale X                attach the Summit/Alpine storage\n\
                                       timing model at scale X in (0,1]\n\
                                       (default: no timing model)\n\
       --spec FILE                     run a declarative campaign: a TOML\n\
                                       file with [base] flag values and\n\
                                       [axes] arrays crossed into one run\n\
                                       per cell (zips/excludes supported);\n\
                                       prints one report line per cell\n"
}

/// Parses a MACSio command line into a configuration.
///
/// Sizes accept `K`/`M`/`G` suffixes (powers of 1000, as MACSio does).
pub fn parse_args<I, S>(args: I) -> Result<MacsioConfig, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let args: Vec<String> = args.into_iter().map(|s| s.as_ref().to_string()).collect();
    let mut cfg = MacsioConfig::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let next = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag {
            "--interface" => cfg.interface = Interface::parse(&next(&mut i)?)?,
            "--parallel_file_mode" => {
                let mode = next(&mut i)?;
                cfg.parallel_file_mode = match mode.as_str() {
                    "SIF" | "sif" => FileMode::Sif,
                    "MIF" | "mif" => {
                        let n = next(&mut i)?;
                        FileMode::mif(n.parse().map_err(|_| format!("bad MIF file count '{n}'"))?)
                    }
                    other => return Err(format!("unknown file mode '{other}'")),
                };
            }
            "--num_dumps" => {
                cfg.num_dumps = parse_num(&next(&mut i)?)? as u32;
            }
            "--part_size" => {
                cfg.part_size = parse_size(&next(&mut i)?)?;
            }
            "--avg_num_parts" => {
                let v = next(&mut i)?;
                cfg.avg_num_parts = v.parse().map_err(|_| format!("bad avg_num_parts '{v}'"))?;
            }
            "--vars_per_part" => {
                cfg.vars_per_part = parse_num(&next(&mut i)?)? as usize;
            }
            "--compute_time" => {
                let v = next(&mut i)?;
                cfg.compute_time = v.parse().map_err(|_| format!("bad compute_time '{v}'"))?;
            }
            "--meta_size" => {
                cfg.meta_size = parse_size(&next(&mut i)?)?;
            }
            "--dataset_growth" => {
                let v = next(&mut i)?;
                cfg.dataset_growth = v.parse().map_err(|_| format!("bad dataset_growth '{v}'"))?;
            }
            "--io_backend" => {
                cfg.io_backend = BackendSpec::parse(&next(&mut i)?)?;
            }
            "--compression" => {
                cfg.compression = CodecSpec::parse(&next(&mut i)?)?;
            }
            "--mode" => {
                cfg.mode = RunMode::parse(&next(&mut i)?)?;
            }
            "--read_pattern" => {
                cfg.read_pattern = ReadSelection::parse(&next(&mut i)?)?;
            }
            "--scenario" => {
                cfg.scenario = Some(Scenario::parse(&next(&mut i)?)?);
            }
            "--nprocs" | "-n" => {
                cfg.nprocs = parse_num(&next(&mut i)?)? as usize;
            }
            "--seed" => {
                cfg.seed = parse_num(&next(&mut i)?)?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    cfg.validate();
    Ok(cfg)
}

/// Parses a declarative MACSio campaign spec (the `--spec FILE` grammar)
/// into one labelled configuration per matrix cell.
///
/// The spec reuses the command-line surface: `[base]` keys are flag
/// names without the `--` prefix (values with spaces, like
/// `parallel_file_mode = "MIF 8"`, split into flag arguments), `[axes]`
/// entries are arrays of flag values crossed in declaration order (last
/// fastest), `[experiment] zip = ["a+b"]` advances axes in lockstep, and
/// `[[exclude]]` tables drop cells whose axis values match. Every cell
/// is parsed by [`parse_args`], so spec files and command lines accept
/// exactly the same spellings and validation.
///
/// Labels are `<experiment name>_<axis tags>` with the axis value
/// flattened name-safe (`agg:4` -> `agg4`, `rle:2.5` -> `rle2p5`);
/// lossy flattenings are index-disambiguated and resulting label
/// collisions rejected with an error naming the clashing cells.
pub fn parse_spec(text: &str) -> Result<Vec<(String, MacsioConfig)>, String> {
    let doc = TomlDoc::parse(text)?;
    let mut name = "macsio".to_string();
    let mut zips: Vec<Vec<String>> = Vec::new();
    if let Some(exp) = doc.section("experiment") {
        for (key, value) in &exp.entries {
            match key.as_str() {
                "name" => {
                    name = value
                        .as_str()
                        .ok_or("experiment.name must be a string")?
                        .to_string()
                }
                "zip" => {
                    for item in value.as_array().ok_or("experiment.zip must be an array")? {
                        let group = item.as_str().ok_or("zip entries must be strings")?;
                        zips.push(group.split('+').map(|m| m.trim().to_string()).collect());
                    }
                }
                other => return Err(format!("unknown [experiment] key '{other}'")),
            }
        }
    }
    // Base flags: every key becomes `--key value...` (space-separated
    // values split into separate arguments, so "MIF 8" works).
    let mut base_args: Vec<String> = Vec::new();
    if let Some(base) = doc.section("base") {
        for (key, value) in &base.entries {
            base_args.push(format!("--{key}"));
            base_args.extend(value.render().split_whitespace().map(String::from));
        }
    }
    // Axes: flag name -> value spellings, in declaration order.
    let mut axes: Vec<(String, Vec<String>)> = Vec::new();
    if let Some(section) = doc.section("axes") {
        for (key, value) in &section.entries {
            let values: Vec<String> = value
                .as_array()
                .ok_or_else(|| format!("axis '{key}' must be an array"))?
                .iter()
                .map(|v| v.render())
                .collect();
            if values.is_empty() {
                return Err(format!("axis '{key}' is empty"));
            }
            axes.push((key.clone(), values));
        }
    }
    let mut excludes: Vec<Vec<(String, String)>> = Vec::new();
    for table in doc.all("exclude") {
        let clauses: Vec<(String, String)> = table
            .entries
            .iter()
            .map(|(k, v)| (k.clone(), v.render()))
            .collect();
        for (axis, _) in &clauses {
            if !axes.iter().any(|(a, _)| a == axis) {
                return Err(format!("exclude references unknown axis '{axis}'"));
            }
        }
        excludes.push(clauses);
    }
    let mut shape = MatrixShape::new();
    for (key, values) in &axes {
        shape = shape.axis(key.clone(), values.len());
    }
    for zip in &zips {
        for member in zip {
            if !axes.iter().any(|(a, _)| a == member) {
                return Err(format!("zip references unknown axis '{member}'"));
            }
        }
        let members: Vec<&str> = zip.iter().map(String::as_str).collect();
        shape = shape.zip(&members);
    }
    // Per-axis name-safe tags, lossy flattenings index-disambiguated.
    let tags: Vec<Vec<String>> = axes
        .iter()
        .map(|(_, values)| {
            let mut tags: Vec<String> = values
                .iter()
                .map(|v| {
                    v.replace('-', "to")
                        .replace([':', ' '], "")
                        .replace([',', '/', '.', ';', '@'], "_")
                })
                .collect();
            disambiguate_tags(&mut tags, 'v');
            tags
        })
        .collect();

    let mut cells = Vec::new();
    'cell: for indices in shape.enumerate()? {
        for clauses in &excludes {
            let hit = clauses.iter().all(|(axis, value)| {
                axes.iter()
                    .zip(&indices)
                    .any(|((a, values), &i)| a == axis && &values[i] == value)
            });
            if !clauses.is_empty() && hit {
                continue 'cell;
            }
        }
        let mut args = base_args.clone();
        let mut label = name.clone();
        for (((key, values), tag), &i) in axes.iter().zip(&tags).zip(&indices) {
            args.push(format!("--{key}"));
            args.extend(values[i].split_whitespace().map(String::from));
            label.push('_');
            label.push_str(&tag[i]);
        }
        let cfg = parse_args(args.iter().map(String::as_str))
            .map_err(|e| format!("cell '{label}': {e}"))?;
        if cells.iter().any(|(l, _)| *l == label) {
            return Err(format!(
                "run label collision: '{label}' is produced by two cells; \
                 rename the experiment or add a distinguishing axis"
            ));
        }
        cells.push((label, cfg));
    }
    Ok(cells)
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("bad number '{s}'"))
}

fn parse_size(s: &str) -> Result<u64, String> {
    let (digits, mult) = match s.chars().last() {
        Some('K' | 'k') => (&s[..s.len() - 1], 1_000u64),
        Some('M' | 'm') => (&s[..s.len() - 1], 1_000_000),
        Some('G' | 'g') => (&s[..s.len() - 1], 1_000_000_000),
        _ => (s, 1),
    };
    let base: f64 = digits.parse().map_err(|_| format!("bad size '{s}'"))?;
    Ok((base * mult as f64).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_listing_shape() {
        let cfg = parse_args([
            "--nprocs",
            "32",
            "--interface",
            "miftmpl",
            "--parallel_file_mode",
            "MIF",
            "32",
            "--num_dumps",
            "10",
            "--part_size",
            "1550000",
            "--avg_num_parts",
            "1",
            "--vars_per_part",
            "1",
            "--compute_time",
            "0.5",
            "--meta_size",
            "1K",
            "--dataset_growth",
            "1.013075",
        ])
        .unwrap();
        assert_eq!(cfg.nprocs, 32);
        assert_eq!(cfg.interface, Interface::Miftmpl);
        assert_eq!(cfg.parallel_file_mode, FileMode::Mif(32));
        assert_eq!(cfg.num_dumps, 10);
        assert_eq!(cfg.part_size, 1_550_000);
        assert_eq!(cfg.meta_size, 1000);
        assert!((cfg.dataset_growth - 1.013075).abs() < 1e-12);
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("10K").unwrap(), 10_000);
        assert_eq!(parse_size("2.5M").unwrap(), 2_500_000);
        assert_eq!(parse_size("1G").unwrap(), 1_000_000_000);
        assert_eq!(parse_size("123").unwrap(), 123);
        assert!(parse_size("abc").is_err());
    }

    #[test]
    fn sif_mode() {
        let cfg = parse_args(["--parallel_file_mode", "SIF"]).unwrap();
        assert_eq!(cfg.parallel_file_mode, FileMode::Sif);
    }

    #[test]
    fn mif_zero_normalizes_at_parse_time() {
        let cfg = parse_args(["--parallel_file_mode", "MIF", "0"]).unwrap();
        assert_eq!(cfg.parallel_file_mode, FileMode::Mif(1));
    }

    #[test]
    fn io_backend_flag_parses() {
        let cfg = parse_args(["--io_backend", "agg:16"]).unwrap();
        assert_eq!(cfg.io_backend, BackendSpec::Aggregated(16));
        let cfg = parse_args(["--io_backend", "deferred"]).unwrap();
        assert_eq!(cfg.io_backend, BackendSpec::Deferred(1));
        let cfg = parse_args(["--io_backend", "streaming:100:64:50"]).unwrap();
        assert!(cfg.io_backend.in_transit());
        assert_eq!(cfg.io_backend.name(), "streaming:100:64:50");
        assert!(parse_args(["--io_backend", "hdf5"]).is_err());
    }

    #[test]
    fn usage_names_the_backend_selector() {
        assert!(usage().contains("--io_backend"));
        assert!(usage().contains("agg:<ratio>"));
        assert!(usage().contains("deferred"));
        assert!(usage().contains("streaming"));
        assert!(usage().contains("in-transit"));
    }

    #[test]
    fn compression_flag_parses() {
        let cfg = parse_args(["--compression", "quant:4"]).unwrap();
        assert_eq!(cfg.compression, CodecSpec::LossyQuant(4));
        let cfg = parse_args(["--compression", "rle"]).unwrap();
        assert_eq!(cfg.compression, CodecSpec::Rle(2.0));
        assert!(parse_args(["--compression", "zstd"]).is_err());
        assert!(usage().contains("--compression"));
    }

    #[test]
    fn mode_flag_parses() {
        let cfg = parse_args(["--mode", "restart"]).unwrap();
        assert_eq!(cfg.mode, RunMode::Restart);
        let cfg = parse_args(["--mode", "wr"]).unwrap();
        assert_eq!(cfg.mode, RunMode::WriteRead);
        assert!(parse_args(["--mode", "append"]).is_err());
        assert!(usage().contains("--mode"));
    }

    #[test]
    fn read_pattern_flag_parses() {
        let cfg = parse_args(["--mode", "restart", "--read_pattern", "field:root"]).unwrap();
        assert_eq!(cfg.read_pattern, ReadSelection::Field("root".into()));
        let cfg = parse_args(["--read_pattern", "box:0,1-3"]).unwrap();
        assert_eq!(cfg.read_pattern, ReadSelection::parse("box:0,1-3").unwrap());
        assert!(parse_args(["--read_pattern", "stripe:1"]).is_err());
    }

    #[test]
    fn usage_documents_every_parser_flag_with_defaults() {
        // The audit the help text promises: every flag the parser
        // accepts (and the binary-local flags) appears in usage(), and
        // every defaulted knob names its default.
        let u = usage();
        for flag in [
            "--interface",
            "--parallel_file_mode",
            "--num_dumps",
            "--part_size",
            "--avg_num_parts",
            "--vars_per_part",
            "--compute_time",
            "--meta_size",
            "--dataset_growth",
            "--nprocs",
            "-n N",
            "--seed",
            "--io_backend",
            "--compression",
            "--mode",
            "--read_pattern",
            "--scenario",
            "--output_dir",
            "--summit_scale",
        ] {
            assert!(u.contains(flag), "usage() is missing {flag}");
        }
        let cfg = MacsioConfig::default();
        for default in [
            "default: miftmpl".to_string(),
            "default: MIF nprocs".to_string(),
            format!("default: {}", cfg.num_dumps),
            format!("default: {}", cfg.part_size),
            format!("default: {}", cfg.vars_per_part),
            format!("default: {}", cfg.nprocs),
            format!("default: {} = 0x4D4143", cfg.seed),
            "full\n".to_string(),
        ] {
            assert!(u.contains(&default), "usage() is missing '{default}'");
        }
        assert!(u.contains("fpp (N-to-N, default)"));
        assert!(u.contains("identity (default)"));
        assert!(u.contains("write-only (default)"));
    }

    #[test]
    fn scenario_flag_parses() {
        let cfg = parse_args(["--scenario", "write;fail@3;restart"]).unwrap();
        assert_eq!(cfg.scenario, Some(Scenario::fail_restart(3)));
        let cfg = parse_args(["--scenario", "write;analyze_every:2:field:root"]).unwrap();
        assert_eq!(
            cfg.scenario.unwrap().name(),
            "write;analyze_every:2:field:root"
        );
        // Malformed programs are rejected at parse time.
        assert!(parse_args(["--scenario", "write;fail@3"]).is_err());
        assert!(parse_args(["--scenario", "explode"]).is_err());
    }

    #[test]
    fn unknown_flag_is_rejected() {
        assert!(parse_args(["--bogus", "1"]).is_err());
    }

    #[test]
    fn spec_compiles_the_flag_matrix() {
        let cells = parse_spec(
            r#"
            [experiment]
            name = "tbl2"

            [base]
            nprocs = 8
            num_dumps = 4
            part_size = "80K"
            parallel_file_mode = "MIF 8"

            [axes]
            io_backend = ["fpp", "agg:4"]
            compression = ["identity", "rle:2.5"]
            mode = ["write", "restart"]

            [[exclude]]
            io_backend = "agg:4"
            compression = "rle:2.5"
            "#,
        )
        .unwrap();
        // 2 x 2 x 2 minus the excluded agg:4+rle:2.5 pair (both modes).
        assert_eq!(cells.len(), 6);
        let labels: Vec<&str> = cells.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels[0], "tbl2_fpp_identity_write");
        assert!(labels.contains(&"tbl2_agg4_identity_restart"));
        assert!(labels.contains(&"tbl2_fpp_rle2_5_write"));
        assert!(!labels.iter().any(|l| l.contains("agg4_rle2_5")));
        for (label, cfg) in &cells {
            assert_eq!(cfg.nprocs, 8, "{label}: base flags apply to every cell");
            assert_eq!(cfg.part_size, 80_000);
            assert_eq!(cfg.parallel_file_mode, FileMode::Mif(8));
        }
        let (_, agg) = cells
            .iter()
            .find(|(l, _)| l == "tbl2_agg4_identity_write")
            .unwrap();
        assert_eq!(agg.io_backend, BackendSpec::Aggregated(4));
        let (_, restart) = cells
            .iter()
            .find(|(l, _)| l == "tbl2_fpp_identity_restart")
            .unwrap();
        assert_eq!(restart.mode, RunMode::Restart);
    }

    #[test]
    fn spec_zip_advances_in_lockstep() {
        let cells = parse_spec(
            r#"
            [experiment]
            name = "z"
            zip = ["io_backend+compression"]
            [axes]
            io_backend = ["fpp", "agg:4"]
            compression = ["identity", "quant:8"]
            "#,
        )
        .unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].0, "z_fpp_identity");
        assert_eq!(cells[1].0, "z_agg4_quant8");
    }

    #[test]
    fn spec_errors_are_clear() {
        // A bad flag value fails with the cell's label in the message.
        let err = parse_spec("[axes]\nio_backend = [\"hdf5\"]").unwrap_err();
        assert!(err.contains("hdf5"), "{err}");
        // Unknown axis names in zips and excludes are rejected.
        let err = parse_spec(
            "[experiment]\nzip = [\"io_backend+ghost\"]\n[axes]\nio_backend = [\"fpp\"]",
        )
        .unwrap_err();
        assert!(err.contains("ghost"), "{err}");
        let err =
            parse_spec("[axes]\nio_backend = [\"fpp\"]\n[[exclude]]\nghost = \"x\"").unwrap_err();
        assert!(err.contains("ghost"), "{err}");
        // Identical axis values collide only after disambiguation fails
        // at the label level — the duplicate-tag rename keeps these
        // distinct, so this parses with unique labels.
        let cells = parse_spec("[axes]\ncompression = [\"rle:2.5\", \"rle:25\"]").unwrap();
        assert_eq!(cells.len(), 2);
        assert_ne!(cells[0].0, cells[1].0);
    }

    #[test]
    fn usage_documents_the_spec_flag() {
        assert!(usage().contains("--spec FILE"));
    }

    #[test]
    fn missing_value_is_rejected() {
        assert!(parse_args(["--num_dumps"]).is_err());
    }
}
