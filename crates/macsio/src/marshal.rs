//! Part marshalling: turning mesh parts into file bytes.
//!
//! Two interfaces (see [`crate::config::Interface`]):
//!
//! * `miftmpl` — a JSON header describing the part followed by the bulk
//!   variable data as raw little-endian doubles. On-disk bytes track the
//!   nominal part size (8 bytes per value plus a small header), which is
//!   the size behaviour the paper's Eq. (3) calibration relies on.
//! * `json` — everything as JSON text, inflating every value to its
//!   decimal representation. Exists to quantify how output-format
//!   expansion shifts the Eq. (3) correction factor (`ablations` bench).

use crate::config::Interface;
use crate::mesh::MeshPart;
use serde_json::json;

/// Mean on-disk bytes per value of the text `json` interface's `{:.8e}`
/// formatting, including the separating comma (e.g. `2.98765432e0,`).
/// Measured by `json_bytes_per_value_constant_is_accurate`.
pub const JSON_BYTES_PER_VALUE: f64 = 13.0;

/// Byte length of the part header alone (everything before the bulk data)
/// for the given interface — used by the size predictor.
pub fn marshal_header_len(part: &MeshPart, dump: u32, interface: Interface) -> usize {
    let encoding = match interface {
        Interface::Miftmpl => "miftmpl",
        Interface::Json => "json",
    };
    let header = header_json(part, dump, encoding);
    let text = serde_json::to_string(&header).expect("header serializes");
    match interface {
        Interface::Miftmpl => text.len() + 1, // newline before payload
        Interface::Json => text.len() + ",\"data\":[]}".len() - 1,
    }
}

/// Serialized form of one part.
pub fn marshal_part(part: &MeshPart, dump: u32, interface: Interface) -> Vec<u8> {
    match interface {
        Interface::Miftmpl => marshal_miftmpl(part, dump),
        Interface::Json => marshal_json(part, dump),
    }
}

fn header_json(part: &MeshPart, dump: u32, encoding: &str) -> serde_json::Value {
    json!({
        "macsio": {
            "interface": encoding,
            "dump": dump,
            "part": {
                "id": part.id,
                "topology": "rectilinear2d",
                "dims": [part.nx, part.ny],
                "vars": part.vars,
            },
        }
    })
}

fn marshal_miftmpl(part: &MeshPart, dump: u32) -> Vec<u8> {
    let header = header_json(part, dump, "miftmpl");
    let header_text = serde_json::to_string(&header).expect("header serializes");
    let mut out = Vec::with_capacity(header_text.len() + 1 + part.payload_bytes() as usize);
    out.extend_from_slice(header_text.as_bytes());
    out.push(b'\n');
    for var in 0..part.vars {
        for v in part.var_data(var, dump) {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

fn marshal_json(part: &MeshPart, dump: u32) -> Vec<u8> {
    use std::fmt::Write as _;
    let header = header_json(part, dump, "json");
    let mut text = serde_json::to_string(&header).expect("header serializes");
    text.pop(); // strip the closing '}' to splice in the data field
    text.push_str(",\"data\":[");
    for var in 0..part.vars {
        if var > 0 {
            text.push(',');
        }
        text.push('[');
        for (i, v) in part.var_data(var, dump).into_iter().enumerate() {
            if i > 0 {
                text.push(',');
            }
            let _ = write!(text, "{v:.8e}");
        }
        text.push(']');
    }
    text.push_str("]}");
    text.into_bytes()
}

/// Root (per-dump) metadata file content: run description, part table,
/// and `meta_size` bytes of filler per task.
pub fn marshal_root(dump: u32, nprocs: usize, parts_per_rank: &[usize], meta_size: u64) -> Vec<u8> {
    let root = json!({
        "macsio_root": {
            "dump": dump,
            "nprocs": nprocs,
            "parts_per_rank": parts_per_rank,
        }
    });
    let mut out = serde_json::to_vec(&root).expect("root serializes");
    // meta_size models application metadata the paper's Table II exposes;
    // filler keeps it honest in the byte accounting.
    out.extend(std::iter::repeat_n(b' ', (meta_size as usize) * nprocs));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part() -> MeshPart {
        MeshPart::from_nominal_size(3, 8 * 1000, 2)
    }

    #[test]
    fn miftmpl_size_tracks_nominal_payload() {
        let p = part();
        let bytes = marshal_part(&p, 0, Interface::Miftmpl);
        let payload = p.payload_bytes() as usize;
        assert!(bytes.len() > payload);
        // Header overhead is small and bounded.
        assert!(bytes.len() < payload + 512, "len {}", bytes.len());
    }

    #[test]
    fn miftmpl_header_is_json_line() {
        let p = part();
        let bytes = marshal_part(&p, 7, Interface::Miftmpl);
        let nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        let header: serde_json::Value = serde_json::from_slice(&bytes[..nl]).unwrap();
        assert_eq!(header["macsio"]["dump"], 7);
        assert_eq!(header["macsio"]["part"]["id"], 3);
        assert_eq!(
            bytes.len() - nl - 1,
            p.payload_bytes() as usize,
            "binary payload exactly 8 bytes/value"
        );
    }

    #[test]
    fn miftmpl_payload_round_trips() {
        let p = MeshPart::from_nominal_size(0, 8 * 16, 1);
        let bytes = marshal_part(&p, 2, Interface::Miftmpl);
        let nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        let payload = &bytes[nl + 1..];
        let first = f64::from_le_bytes(payload[0..8].try_into().unwrap());
        assert_eq!(first, p.var_data(0, 2)[0]);
    }

    #[test]
    fn json_is_valid_and_inflated() {
        let p = part();
        let j = marshal_part(&p, 0, Interface::Json);
        let parsed: serde_json::Value = serde_json::from_slice(&j).unwrap();
        assert_eq!(parsed["macsio"]["part"]["vars"], 2);
        assert_eq!(parsed["data"][0].as_array().unwrap().len(), p.cells());
        // Text encoding costs more than 8 bytes/value.
        let bin = marshal_part(&p, 0, Interface::Miftmpl);
        assert!(j.len() > bin.len());
    }

    #[test]
    fn marshalling_is_deterministic() {
        let p = part();
        assert_eq!(
            marshal_part(&p, 1, Interface::Miftmpl),
            marshal_part(&p, 1, Interface::Miftmpl)
        );
    }

    #[test]
    fn json_bytes_per_value_constant_is_accurate() {
        // The predictor's mean-width constant must track the real
        // formatting cost of the synthetic field's value range.
        let p = MeshPart::from_nominal_size(0, 8 * 4096, 1);
        let total = marshal_json(&p, 0).len();
        let header = marshal_header_len(&p, 0, Interface::Json);
        let per_value = (total - header) as f64 / p.cells() as f64;
        assert!(
            (per_value - JSON_BYTES_PER_VALUE).abs() < 0.75,
            "measured {per_value} vs constant {JSON_BYTES_PER_VALUE}"
        );
    }

    #[test]
    fn root_file_carries_meta_size() {
        let a = marshal_root(0, 4, &[1, 1, 1, 1], 0);
        let b = marshal_root(0, 4, &[1, 1, 1, 1], 100);
        assert_eq!(b.len(), a.len() + 400);
        let parsed: serde_json::Value = serde_json::from_slice(&a).unwrap();
        assert_eq!(parsed["macsio_root"]["nprocs"], 4);
    }
}
