//! Synthetic mesh-part construction.
//!
//! MACSio marshals rectangular "mesh parts" with a configurable nominal
//! size; the part dimensions must form a valid 2-D rectilinear topology,
//! which rounds the actual size up from the request — the paper calls this
//! out as one source of its correction factor.

use serde::{Deserialize, Serialize};

/// A rectangular mesh part: `nx * ny` cells with `vars` variables.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeshPart {
    /// Global part id.
    pub id: usize,
    /// Cells along x.
    pub nx: usize,
    /// Cells along y.
    pub ny: usize,
    /// Number of variables.
    pub vars: usize,
}

impl MeshPart {
    /// Builds a near-square part whose single-variable payload is at least
    /// `nominal_bytes` (8 bytes per cell), the topology-validity rounding
    /// MACSio performs.
    pub fn from_nominal_size(id: usize, nominal_bytes: u64, vars: usize) -> Self {
        assert!(vars > 0, "MeshPart: zero variables");
        let cells = (nominal_bytes as f64 / 8.0).ceil().max(1.0) as usize;
        let nx = (cells as f64).sqrt().ceil() as usize;
        let ny = cells.div_ceil(nx);
        Self { id, nx, ny, vars }
    }

    /// Cells in the part.
    pub fn cells(&self) -> usize {
        self.nx * self.ny
    }

    /// Payload bytes of one variable (8 bytes per cell).
    pub fn var_bytes(&self) -> u64 {
        self.cells() as u64 * 8
    }

    /// Payload bytes of all variables.
    pub fn payload_bytes(&self) -> u64 {
        self.var_bytes() * self.vars as u64
    }

    /// Generates one variable's synthetic field: a deterministic smooth
    /// function of cell index, part id, and dump index (content is
    /// irrelevant to the workload; determinism matters).
    pub fn var_data(&self, var: usize, dump: u32) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.cells());
        let fx = 2.0 * std::f64::consts::PI / self.nx.max(1) as f64;
        let fy = 2.0 * std::f64::consts::PI / self.ny.max(1) as f64;
        let phase = (self.id as f64) * 0.7 + (var as f64) * 1.3 + (dump as f64) * 0.1;
        for j in 0..self.ny {
            for i in 0..self.nx {
                out.push((i as f64 * fx + phase).sin() * (j as f64 * fy).cos() + 2.0);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_size_is_met_or_exceeded() {
        for req in [1u64, 7, 8, 100, 1_000, 1_550_000, 12_345_677] {
            let p = MeshPart::from_nominal_size(0, req, 1);
            assert!(p.var_bytes() >= req, "request {req} got {}", p.var_bytes());
            // Rounding is bounded: never more than one extra row/col.
            let slack = p.var_bytes() as f64 / req.max(8) as f64;
            assert!(slack < 1.6, "request {req} slack {slack}");
        }
    }

    #[test]
    fn parts_are_near_square() {
        let p = MeshPart::from_nominal_size(0, 8 * 10_000, 1);
        let aspect = p.nx as f64 / p.ny as f64;
        assert!((0.5..=2.0).contains(&aspect));
        assert_eq!(p.cells(), p.nx * p.ny);
    }

    #[test]
    fn payload_scales_with_vars() {
        let p1 = MeshPart::from_nominal_size(0, 8_000, 1);
        let p3 = MeshPart::from_nominal_size(0, 8_000, 3);
        assert_eq!(p3.payload_bytes(), 3 * p1.payload_bytes());
    }

    #[test]
    fn var_data_is_deterministic_and_sized() {
        let p = MeshPart::from_nominal_size(7, 8_000, 2);
        let a = p.var_data(0, 3);
        let b = p.var_data(0, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), p.cells());
        // Different var / dump give different fields.
        assert_ne!(p.var_data(1, 3), a);
        assert_ne!(p.var_data(0, 4), a);
        // All finite.
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn tiny_request_yields_single_cell() {
        let p = MeshPart::from_nominal_size(0, 1, 1);
        assert_eq!(p.cells(), 1);
        assert_eq!(p.var_bytes(), 8);
    }
}
