//! The `macsio` proxy I/O executable.
//!
//! Accepts the Table II flags plus:
//! * `--output_dir DIR` — write real files under DIR (default: in-memory)
//! * `--summit_scale X` — attach the Summit-like storage timing model
//!
//! Prints a per-dump table and a JSON report to stdout.

use iosim::{IoTracker, MemFs, RealFs, StorageModel, Vfs};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut output_dir: Option<String> = None;
    let mut summit_scale: Option<f64> = None;

    // Strip binary-local flags before handing the rest to the MACSio parser.
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--output_dir" => {
                i += 1;
                output_dir = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("missing value for --output_dir");
                    std::process::exit(2);
                }));
            }
            "--summit_scale" => {
                i += 1;
                summit_scale = args.get(i).and_then(|v| v.parse().ok());
            }
            _ => rest.push(std::mem::take(&mut args[i])),
        }
        i += 1;
    }

    let cfg = match macsio::parse_args(rest.iter().map(String::as_str)) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("macsio: {e}");
            eprintln!("{}", macsio::cli::usage());
            std::process::exit(2);
        }
    };

    let fs: Box<dyn Vfs> = match &output_dir {
        Some(dir) => Box::new(RealFs::new(dir).unwrap_or_else(|e| {
            eprintln!("macsio: cannot open output dir: {e}");
            std::process::exit(1);
        })),
        None => Box::new(MemFs::with_retention(4096)),
    };
    let storage = summit_scale.map(StorageModel::summit_alpine);
    let tracker = IoTracker::new();

    let report = macsio::run(&cfg, fs.as_ref(), &tracker, storage.as_ref()).unwrap_or_else(|e| {
        eprintln!("macsio: run failed: {e}");
        std::process::exit(1);
    });

    println!("# {}", cfg.command_line());
    println!("# dump  bytes  cumulative");
    let mut cum = 0u64;
    for (k, b) in report.bytes_per_dump.iter().enumerate() {
        cum += b;
        println!("{k:>6}  {b:>12}  {cum:>12}");
    }
    println!(
        "# scenario={} total_bytes={} files={} wall_time={:.3}s duty_cycle={:.3}",
        report.scenario,
        report.total_bytes,
        report.files_written,
        report.wall_time,
        report.timeline.duty_cycle()
    );
    if report.read_bytes > 0 || report.restarts > 0 {
        println!(
            "# restarts={} read_bytes={} physical_read_bytes={} read_files={} read_wall={:.3}s",
            report.restarts,
            report.read_bytes,
            report.physical_read_bytes,
            report.read_files,
            report.read_wall
        );
    }
}
