//! The `macsio` proxy I/O executable.
//!
//! Accepts the Table II flags plus:
//! * `--output_dir DIR` — write real files under DIR (default: in-memory)
//! * `--summit_scale X` — attach the Summit-like storage timing model
//! * `--spec FILE` — run every cell of a TOML experiment spec instead of
//!   a single flag set; remaining flags are rejected (the spec's `[base]`
//!   section owns them)
//!
//! Prints a per-dump table and a JSON report to stdout; in spec mode,
//! one summary row per cell.

use iosim::{IoTracker, MemFs, RealFs, StorageModel, Vfs};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut output_dir: Option<String> = None;
    let mut summit_scale: Option<f64> = None;
    let mut spec_path: Option<String> = None;

    // Strip binary-local flags before handing the rest to the MACSio parser.
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--output_dir" => {
                i += 1;
                output_dir = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("missing value for --output_dir");
                    std::process::exit(2);
                }));
            }
            "--summit_scale" => {
                i += 1;
                summit_scale = args.get(i).and_then(|v| v.parse().ok());
            }
            "--spec" => {
                i += 1;
                spec_path = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("missing value for --spec");
                    std::process::exit(2);
                }));
            }
            _ => rest.push(std::mem::take(&mut args[i])),
        }
        i += 1;
    }

    if let Some(path) = spec_path {
        if !rest.is_empty() {
            eprintln!(
                "macsio: --spec replaces per-flag configuration; move {:?} into the spec's [base] section",
                rest[0]
            );
            std::process::exit(2);
        }
        run_spec_mode(&path, output_dir.as_deref(), summit_scale);
        return;
    }

    let cfg = match macsio::parse_args(rest.iter().map(String::as_str)) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("macsio: {e}");
            eprintln!("{}", macsio::cli::usage());
            std::process::exit(2);
        }
    };

    let fs: Box<dyn Vfs> = match &output_dir {
        Some(dir) => Box::new(RealFs::new(dir).unwrap_or_else(|e| {
            eprintln!("macsio: cannot open output dir: {e}");
            std::process::exit(1);
        })),
        None => Box::new(MemFs::with_retention(4096)),
    };
    let storage = summit_scale.map(StorageModel::summit_alpine);
    let tracker = IoTracker::new();

    let report = macsio::run(&cfg, fs.as_ref(), &tracker, storage.as_ref()).unwrap_or_else(|e| {
        eprintln!("macsio: run failed: {e}");
        std::process::exit(1);
    });

    println!("# {}", cfg.command_line());
    println!("# dump  bytes  cumulative");
    let mut cum = 0u64;
    for (k, b) in report.bytes_per_dump.iter().enumerate() {
        cum += b;
        println!("{k:>6}  {b:>12}  {cum:>12}");
    }
    println!(
        "# scenario={} total_bytes={} files={} wall_time={:.3}s duty_cycle={:.3}",
        report.scenario,
        report.total_bytes,
        report.files_written,
        report.wall_time,
        report.timeline.duty_cycle()
    );
    if report.net_bytes > 0 {
        println!(
            "# net_bytes={} net_seconds={:.3}s window_stall={:.3}s",
            report.net_bytes, report.net_seconds, report.window_stall
        );
    }
    if report.read_bytes > 0 || report.restarts > 0 {
        println!(
            "# restarts={} read_bytes={} physical_read_bytes={} read_files={} read_wall={:.3}s",
            report.restarts,
            report.read_bytes,
            report.physical_read_bytes,
            report.read_files,
            report.read_wall
        );
    }
}

/// Run every cell of a TOML experiment spec, one fresh filesystem per
/// cell, and print a per-cell summary table.
fn run_spec_mode(path: &str, output_dir: Option<&str>, summit_scale: Option<f64>) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("macsio: cannot read spec {path}: {e}");
        std::process::exit(2);
    });
    let cells = macsio::parse_spec(&text).unwrap_or_else(|e| {
        eprintln!("macsio: {e}");
        std::process::exit(2);
    });
    let storage = summit_scale.map(StorageModel::summit_alpine);

    println!("# spec {path}: {} cells", cells.len());
    println!("# label  total_bytes  files  read_bytes  wall_time");
    for (label, cfg) in &cells {
        // Each cell writes into its own namespace: a subdirectory when
        // backed by real files, a fresh MemFs otherwise.
        let fs: Box<dyn Vfs> = match output_dir {
            Some(dir) => {
                let cell_dir = format!("{dir}/{label}");
                std::fs::create_dir_all(&cell_dir).unwrap_or_else(|e| {
                    eprintln!("macsio: cannot create {cell_dir}: {e}");
                    std::process::exit(1);
                });
                Box::new(RealFs::new(&cell_dir).unwrap_or_else(|e| {
                    eprintln!("macsio: cannot open output dir: {e}");
                    std::process::exit(1);
                }))
            }
            None => Box::new(MemFs::with_retention(4096)),
        };
        let tracker = IoTracker::new();
        let report =
            macsio::run(cfg, fs.as_ref(), &tracker, storage.as_ref()).unwrap_or_else(|e| {
                eprintln!("macsio: cell {label} failed: {e}");
                std::process::exit(1);
            });
        println!(
            "{label}  {}  {}  {}  {:.3}s",
            report.total_bytes, report.files_written, report.read_bytes, report.wall_time
        );
    }
}
