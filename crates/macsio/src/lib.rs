//! MACSio — the Multi-purpose, Application-Centric, Scalable I/O proxy —
//! reimplemented in Rust.
//!
//! Implements the command-line surface of the paper's Table II and the
//! N-to-N output pattern of Fig. 3:
//!
//! ```text
//! macsio_json_{taskID:05}_{stepID:03}.json   one per task per dump
//! macsio_json_root_{stepID:03}.json          one per dump
//! ```
//!
//! The `dataset_growth` multiplier provides the non-linear "kernel"
//! data-production behaviour the paper calibrates against AMReX-Castro;
//! `compute_time` sets the burst cadence for dynamic studies. Runs can
//! also read their dumps back (`--mode restart|wr`), selectively so with
//! `--read_pattern` (one field, a task box) through the io-engine's
//! selection read plane — and `--scenario` interprets a full
//! [`io_engine::Scenario`] program over the dump stream
//! (`write;fail@2;restart`, `write;analyze_every:2:field:root`), so
//! mid-run recoveries and in-run analysis interleave with the write
//! bursts.
//!
//! **Layer position:** the second proxy write path, next to `plotfile` —
//! above `io-engine`, parameterized by `model`'s Listing-1 translation.
//! Key types: [`MacsioConfig`], [`RunMode`], [`FileMode`],
//! [`MacsioReport`].
//!
//! ```
//! use macsio::{run, MacsioConfig};
//! use iosim::{IoTracker, MemFs};
//!
//! let cfg = MacsioConfig { nprocs: 4, num_dumps: 2, ..Default::default() };
//! let fs = MemFs::new();
//! let tracker = IoTracker::new();
//! let report = run(&cfg, &fs, &tracker, None).unwrap();
//! assert_eq!(report.bytes_per_dump.len(), 2);
//! ```

pub mod cli;
pub mod config;
pub mod dump;
pub mod marshal;
pub mod mesh;

pub use cli::{parse_args, parse_spec, usage};
pub use config::{FileMode, Interface, MacsioConfig, RunMode};
pub use dump::{run, run_with_backend, MacsioReport};
pub use marshal::{marshal_part, marshal_root};
pub use mesh::MeshPart;
