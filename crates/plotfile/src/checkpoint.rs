//! Checkpoint-restart output.
//!
//! The paper notes that "AMReX also supports the generation of
//! checkpoint-restart data in a similar manner, but we focused on only the
//! plot files for this particular study". This module closes that gap so
//! checkpoint workloads (`amr.check_int` in Listing 2) can be studied too:
//! the same N-to-N pattern, but carrying the *conserved state* (4
//! components) rather than the 22 derived plot variables, plus the restart
//! metadata AMReX stores (per-level times, steps, dt).
//!
//! Checkpoint bytes are recorded with the same `(step, level, task)` keys
//! as plotfiles, so the model machinery applies unchanged.

use crate::format::{cell_h, fab_header, format_box, FabOnDisk};
use crate::writer::PlotfileStats;
use amr_mesh::{BoxArray, DistributionMapping, Geometry};
use io_engine::{IoBackend, Payload, Put};
use iosim::{IoKey, IoKind, IoTracker, WriteRequest};
use std::fmt::Write as _;

/// One level of a checkpoint, described by layout (no data needed: the
/// checkpoint byte volume is `cells * ncomp * 8` exactly like plot data).
pub struct CheckpointLevel {
    /// Level geometry.
    pub geom: Geometry,
    /// Grids.
    pub ba: BoxArray,
    /// Rank ownership.
    pub dm: DistributionMapping,
    /// Steps taken at this level.
    pub level_steps: u64,
    /// Current dt at this level.
    pub dt: f64,
}

/// A checkpoint dump description.
pub struct CheckpointSpec {
    /// Directory, e.g. `sedov_2d_cyl_in_cart_chk00020`.
    pub dir: String,
    /// Output counter for tracker keys.
    pub output_counter: u32,
    /// Simulation time.
    pub time: f64,
    /// Conserved-state component count (4 for 2-D Euler).
    pub ncomp: usize,
    /// Refinement ratio.
    pub ref_ratio: i64,
    /// Levels, coarsest first.
    pub levels: Vec<CheckpointLevel>,
}

/// Outcome: byte/file totals plus write requests for burst simulation.
#[derive(Clone, Debug, Default)]
pub struct CheckpointStats {
    /// Total bytes.
    pub total_bytes: u64,
    /// Files written.
    pub nfiles: u64,
    /// The write requests.
    pub requests: Vec<WriteRequest>,
}

/// The checkpoint `Header` content (`CheckPointVersion_1.0` stream:
/// version, spacedim, time, finest level, per-level geometry/step/dt
/// tables, then the box arrays).
pub fn checkpoint_header(spec: &CheckpointSpec) -> String {
    let mut s = String::with_capacity(2048);
    s.push_str("CheckPointVersion_1.0\n");
    s.push_str("2\n");
    let _ = writeln!(s, "{:.17e}", spec.time);
    let _ = writeln!(s, "{}", spec.levels.len() - 1);
    for l in &spec.levels {
        let _ = writeln!(s, "{}", format_box(&l.geom.domain));
    }
    for l in &spec.levels {
        let _ = write!(s, "{} ", l.level_steps);
    }
    s.push('\n');
    for l in &spec.levels {
        let _ = write!(s, "{:.17e} ", l.dt);
    }
    s.push('\n');
    for l in &spec.levels {
        let _ = writeln!(s, "({} 0", l.ba.len());
        for b in l.ba.iter() {
            let _ = writeln!(s, "{}", format_box(b));
        }
        s.push_str(")\n");
    }
    s
}

/// Accounts one checkpoint dump through an [`IoBackend`] using size-only
/// payloads — the restart-state sibling of
/// [`crate::sizer::account_plotfile_with`]. The backend keeps its
/// physical layout (aggregation, deferred staging) and any compression
/// stage prices the state bytes like plot data, so checkpoint cadence is
/// a backend × codec question, not a hard-coded N-to-N clone of the plot
/// path. Put order matches [`account_checkpoint`] exactly: per level the
/// rank `Cell_D` states then `Cell_H`, then the restart `Header` — so
/// the tracker records are identical to the plain accounting path.
///
/// Because the dump goes through the backend as its own step, the
/// checkpoint becomes *readable*: a mid-run restart reads it back with
/// [`IoBackend::read_step`] at this `output_counter`.
pub fn account_checkpoint_with(
    backend: &mut dyn IoBackend,
    spec: &CheckpointSpec,
) -> std::io::Result<PlotfileStats> {
    assert!(!spec.levels.is_empty(), "account_checkpoint: no levels");
    assert!(spec.ncomp > 0, "account_checkpoint: zero components");
    backend.begin_step(spec.output_counter, &spec.dir);
    let nranks = spec.levels[0].dm.nranks();
    let put = |backend: &mut dyn IoBackend, level: u32, task: u32, kind, path: String, bytes| {
        backend.put(Put {
            key: IoKey {
                step: spec.output_counter,
                level,
                task,
            },
            kind,
            path,
            payload: Payload::Size(bytes),
        })
    };

    for (lev, level) in spec.levels.iter().enumerate() {
        let lev_dir = format!("{}/Level_{}", spec.dir, lev);
        let mut fabs_on_disk: Vec<Option<FabOnDisk>> = (0..level.ba.len()).map(|_| None).collect();
        for rank in 0..nranks {
            let my_boxes = level.dm.boxes_of(rank);
            if my_boxes.is_empty() {
                continue;
            }
            let file_name = format!("Cell_D_{rank:05}");
            let mut bytes = 0u64;
            for &bi in &my_boxes {
                let valid = level.ba.get(bi);
                fabs_on_disk[bi] = Some(FabOnDisk {
                    file: file_name.clone(),
                    offset: bytes,
                });
                bytes += fab_header(&valid, spec.ncomp).len() as u64;
                bytes += valid.num_pts() as u64 * spec.ncomp as u64 * 8;
            }
            put(
                backend,
                lev as u32,
                rank as u32,
                IoKind::Data,
                format!("{lev_dir}/{file_name}"),
                bytes,
            )?;
        }
        let boxes: Vec<_> = level.ba.iter().copied().collect();
        let fods: Vec<FabOnDisk> = fabs_on_disk
            .into_iter()
            .map(|f| f.expect("every box has an owner"))
            .collect();
        let zeros = vec![vec![0.0; spec.ncomp]; boxes.len()];
        let content = cell_h(spec.ncomp, &boxes, &fods, &zeros, &zeros);
        put(
            backend,
            lev as u32,
            0,
            IoKind::Metadata,
            format!("{lev_dir}/Cell_H"),
            content.len() as u64,
        )?;
    }

    let header = checkpoint_header(spec);
    put(
        backend,
        0,
        0,
        IoKind::Metadata,
        format!("{}/Header", spec.dir),
        header.len() as u64,
    )?;
    Ok(PlotfileStats::from_step(backend.end_step()?))
}

/// Accounts a checkpoint dump into `tracker` (exact sizes; nothing is
/// materialized — checkpoint payloads are pure state dumps).
pub fn account_checkpoint(tracker: &IoTracker, spec: &CheckpointSpec) -> CheckpointStats {
    assert!(!spec.levels.is_empty(), "account_checkpoint: no levels");
    assert!(spec.ncomp > 0, "account_checkpoint: zero components");
    let mut stats = CheckpointStats::default();
    let nranks = spec.levels[0].dm.nranks();

    for (lev, level) in spec.levels.iter().enumerate() {
        let lev_dir = format!("{}/Level_{}", spec.dir, lev);
        let mut fabs_on_disk: Vec<Option<FabOnDisk>> = (0..level.ba.len()).map(|_| None).collect();
        for rank in 0..nranks {
            let my_boxes = level.dm.boxes_of(rank);
            if my_boxes.is_empty() {
                continue;
            }
            let file_name = format!("Cell_D_{rank:05}");
            let mut bytes = 0u64;
            for &bi in &my_boxes {
                let valid = level.ba.get(bi);
                fabs_on_disk[bi] = Some(FabOnDisk {
                    file: file_name.clone(),
                    offset: bytes,
                });
                bytes += fab_header(&valid, spec.ncomp).len() as u64;
                bytes += valid.num_pts() as u64 * spec.ncomp as u64 * 8;
            }
            tracker.record(
                IoKey {
                    step: spec.output_counter,
                    level: lev as u32,
                    task: rank as u32,
                },
                IoKind::Data,
                bytes,
            );
            stats.total_bytes += bytes;
            stats.nfiles += 1;
            stats.requests.push(WriteRequest {
                rank,
                path: format!("{lev_dir}/{file_name}"),
                bytes,
                start: 0.0,
            });
        }
        let boxes: Vec<_> = level.ba.iter().copied().collect();
        let fods: Vec<FabOnDisk> = fabs_on_disk
            .into_iter()
            .map(|f| f.expect("every box has an owner"))
            .collect();
        let zeros = vec![vec![0.0; spec.ncomp]; boxes.len()];
        let content = cell_h(spec.ncomp, &boxes, &fods, &zeros, &zeros);
        let bytes = content.len() as u64;
        tracker.record(
            IoKey {
                step: spec.output_counter,
                level: lev as u32,
                task: 0,
            },
            IoKind::Metadata,
            bytes,
        );
        stats.total_bytes += bytes;
        stats.nfiles += 1;
        stats.requests.push(WriteRequest {
            rank: 0,
            path: format!("{lev_dir}/Cell_H"),
            bytes,
            start: 0.0,
        });
    }

    let header = checkpoint_header(spec);
    let bytes = header.len() as u64;
    tracker.record(
        IoKey {
            step: spec.output_counter,
            level: 0,
            task: 0,
        },
        IoKind::Metadata,
        bytes,
    );
    stats.total_bytes += bytes;
    stats.nfiles += 1;
    stats.requests.push(WriteRequest {
        rank: 0,
        path: format!("{}/Header", spec.dir),
        bytes,
        start: 0.0,
    });
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use amr_mesh::prelude::*;

    fn spec(n: i64, nranks: usize, ncomp: usize) -> CheckpointSpec {
        let geom = Geometry::unit_square(IntVect::splat(n));
        let ba = BoxArray::single(geom.domain).max_size(n / 2);
        let dm = DistributionMapping::new(&ba, nranks, DistributionStrategy::Sfc);
        CheckpointSpec {
            dir: "/chk00010".into(),
            output_counter: 1,
            time: 0.125,
            ncomp,
            ref_ratio: 2,
            levels: vec![CheckpointLevel {
                geom,
                ba,
                dm,
                level_steps: 10,
                dt: 1e-3,
            }],
        }
    }

    #[test]
    fn header_carries_restart_state() {
        let s = spec(16, 2, 4);
        let h = checkpoint_header(&s);
        assert!(h.starts_with("CheckPointVersion_1.0"));
        assert!(h.contains("((0,0) (15,15) (0,0))"));
        assert!(h.contains("10 "));
        assert!(h.contains("1.00000000000000002e-3")); // dt
    }

    #[test]
    fn accounting_scales_with_state_components() {
        let tracker4 = IoTracker::new();
        let s4 = account_checkpoint(&tracker4, &spec(32, 2, 4));
        let tracker8 = IoTracker::new();
        let s8 = account_checkpoint(&tracker8, &spec(32, 2, 8));
        // Data doubles with component count, metadata grows mildly.
        let d4 = tracker4.total_bytes_of(IoKind::Data);
        let d8 = tracker8.total_bytes_of(IoKind::Data);
        assert!(d8 > 2 * d4 - 1024);
        assert!(d8 < 2 * d4 + 1024);
        assert_eq!(s4.nfiles, s8.nfiles);
    }

    #[test]
    fn checkpoint_is_smaller_than_plotfile_for_same_grids() {
        // 4 conserved components vs 22 plot variables: the checkpoint
        // should be roughly 4/22 of the plotfile payload.
        let geom = Geometry::unit_square(IntVect::splat(64));
        let ba = BoxArray::single(geom.domain).max_size(32);
        let dm = DistributionMapping::new(&ba, 2, DistributionStrategy::Sfc);

        let t_chk = IoTracker::new();
        account_checkpoint(
            &t_chk,
            &CheckpointSpec {
                dir: "/chk".into(),
                output_counter: 1,
                time: 0.0,
                ncomp: 4,
                ref_ratio: 2,
                levels: vec![CheckpointLevel {
                    geom,
                    ba: ba.clone(),
                    dm: dm.clone(),
                    level_steps: 0,
                    dt: 1e-3,
                }],
            },
        );
        let t_plt = IoTracker::new();
        crate::sizer::account_plotfile(
            &t_plt,
            &crate::sizer::PlotfileLayout {
                dir: "/plt".into(),
                output_counter: 1,
                time: 0.0,
                var_names: crate::format::castro_sedov_plot_vars(),
                ref_ratio: 2,
                levels: vec![crate::sizer::LayoutLevel {
                    geom,
                    ba,
                    dm,
                    level_steps: 0,
                }],
                inputs: vec![],
            },
        );
        let chk = t_chk.total_bytes_of(IoKind::Data) as f64;
        let plt = t_plt.total_bytes_of(IoKind::Data) as f64;
        let ratio = chk / plt;
        assert!(
            (0.15..0.25).contains(&ratio),
            "chk/plt = {ratio} (expect ~4/22)"
        );
    }

    #[test]
    fn backend_routed_checkpoint_matches_plain_accounting() {
        use io_engine::BackendSpec;
        use iosim::{MemFs, Vfs};
        let s = spec(32, 4, 4);

        let t_plain = IoTracker::new();
        let plain = account_checkpoint(&t_plain, &s);

        let t_backend = IoTracker::new();
        let fs = MemFs::with_retention(0);
        let mut backend = BackendSpec::FilePerProcess.build(&fs as &dyn Vfs, &t_backend);
        let routed = account_checkpoint_with(backend.as_mut(), &s).unwrap();
        backend.close().unwrap();

        // Through the pass-through backend, the routed path reproduces
        // the plain accounting byte-for-byte: tracker records, totals,
        // file count, and the write-request list.
        assert_eq!(t_plain.export(), t_backend.export());
        assert_eq!(routed.total_bytes, plain.total_bytes);
        assert_eq!(routed.nfiles, plain.nfiles);
        assert_eq!(routed.requests.len(), plain.requests.len());
        for (r, p) in routed.requests.iter().zip(&plain.requests) {
            assert_eq!((r.rank, &r.path, r.bytes), (p.rank, &p.path, p.bytes));
        }
    }

    #[test]
    fn aggregated_checkpoint_funnels_state_files() {
        use io_engine::BackendSpec;
        use iosim::{MemFs, Vfs};
        let s = spec(32, 4, 4);
        let tracker = IoTracker::new();
        let fs = MemFs::with_retention(0);
        let mut backend = BackendSpec::Aggregated(2).build(&fs as &dyn Vfs, &tracker);
        let stats = account_checkpoint_with(backend.as_mut(), &s).unwrap();
        backend.close().unwrap();
        // 4 ranks over ratio 2 -> 2 subfiles + 1 index, versus the 6
        // N-to-N files — checkpoint cadence now rides the backend axis.
        assert_eq!(stats.nfiles, 3);
        // The tracker's logical view is backend-invariant.
        let t_plain = IoTracker::new();
        account_checkpoint(&t_plain, &s);
        assert_eq!(tracker.export(), t_plain.export());
    }

    #[test]
    fn backend_routed_checkpoint_reads_back() {
        use io_engine::{BackendSpec, ReadSelection};
        use iosim::{MemFs, Vfs};
        let s = spec(32, 2, 4);
        let tracker = IoTracker::new();
        let fs = MemFs::with_retention(0);
        let mut backend = BackendSpec::FilePerProcess.build(&fs as &dyn Vfs, &tracker);
        let stats = account_checkpoint_with(backend.as_mut(), &s).unwrap();
        let read = backend
            .read_selection(s.output_counter, &s.dir, &ReadSelection::Full)
            .unwrap();
        backend.close().unwrap();
        // The restart read recovers exactly the state volume written.
        assert_eq!(read.stats.logical_bytes, stats.total_bytes);
        assert_eq!(read.stats.files, stats.nfiles);
        assert_eq!(tracker.total_read_bytes(), stats.total_bytes);
    }

    #[test]
    fn per_rank_files_follow_ownership() {
        let tracker = IoTracker::new();
        let stats = account_checkpoint(&tracker, &spec(32, 4, 4));
        // 4 boxes over 4 ranks -> 4 data files + Cell_H + Header.
        assert_eq!(stats.nfiles, 6);
        let per_task = tracker.bytes_per_task_of(1, 0, IoKind::Data);
        assert!(per_task.iter().all(|&b| b > 0));
    }
}
