//! Textual pieces of the AMReX native plotfile format.
//!
//! These builders reproduce the on-disk grammar of AMReX's
//! `WriteMultiLevelPlotfile`: the `HyperCLaw-V1.1` Header, the per-level
//! `Cell_H` metadata, and the `FAB` record headers inside `Cell_D` files.
//! Faithful formatting matters because the paper's dependent variable is
//! *bytes produced*, and header/metadata bytes are part of the workload.

use amr_mesh::{Geometry, IndexBox};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;

thread_local! {
    static E17_CACHE: RefCell<HashMap<u64, String>> = RefCell::new(HashMap::new());
}

/// Appends `v` formatted exactly as `{v:.17e}` would, memoized per bit
/// pattern. Header synthesis formats the same values over and over —
/// grid-aligned box extents, placeholder min/max entries, per-level cell
/// sizes — and `f64` scientific formatting dominates account-only dump
/// cost, so repeat values come from the cache instead.
fn push_e17(out: &mut String, v: f64) {
    E17_CACHE.with(|c| {
        let mut map = c.borrow_mut();
        if map.len() > 8192 {
            map.clear();
        }
        let s = map
            .entry(v.to_bits())
            .or_insert_with(|| format!("{v:.17e}"));
        out.push_str(s);
    });
}

/// Formats a box the way AMReX prints 2-D boxes in headers:
/// `((lo_x,lo_y) (hi_x,hi_y) (0,0))`.
pub fn format_box(b: &IndexBox) -> String {
    format!(
        "(({},{}) ({},{}) (0,0))",
        b.lo().x,
        b.lo().y,
        b.hi().x,
        b.hi().y
    )
}

/// The `FAB` record header preceding each fab's binary payload in a
/// `Cell_D` file. The descriptor strings are AMReX's native IEEE 754
/// little-endian f64 descriptor.
pub fn fab_header(valid: &IndexBox, ncomp: usize) -> String {
    format!(
        "FAB ((8, (64 11 52 0 1 12 0 1023)),(8, (8 7 6 5 4 3 2 1))){} {}\n",
        format_box(valid),
        ncomp
    )
}

/// Input description for one level of the plotfile Header.
pub struct HeaderLevel {
    /// Level geometry (domain + physical extent).
    pub geom: Geometry,
    /// Grid boxes at this level.
    pub boxes: Vec<IndexBox>,
    /// Number of time steps taken at this level.
    pub level_steps: u64,
}

/// Builds the top-level `Header` file content.
///
/// Layout follows `amrex::WriteGenericPlotfileHeader`: version line,
/// variable count and names, dimensionality, time, finest level, physical
/// domain, refinement ratios, index domains, step counts, cell sizes,
/// coordinate system, and per-level grid tables with the relative
/// `Level_i/Cell` path lines.
pub fn plotfile_header(
    var_names: &[String],
    time: f64,
    levels: &[HeaderLevel],
    ref_ratio: i64,
) -> String {
    assert!(!levels.is_empty(), "plotfile_header: no levels");
    let finest = levels.len() - 1;
    let g0 = &levels[0].geom;
    let mut s = String::with_capacity(4096);
    s.push_str("HyperCLaw-V1.1\n");
    let _ = writeln!(s, "{}", var_names.len());
    for v in var_names {
        s.push_str(v);
        s.push('\n');
    }
    s.push_str("2\n"); // spacedim
    push_e17(&mut s, time);
    s.push('\n');
    let _ = writeln!(s, "{finest}");
    push_e17(&mut s, g0.prob_lo[0]);
    s.push(' ');
    push_e17(&mut s, g0.prob_lo[1]);
    s.push('\n');
    push_e17(&mut s, g0.prob_hi[0]);
    s.push(' ');
    push_e17(&mut s, g0.prob_hi[1]);
    s.push('\n');
    // Refinement ratios between consecutive levels.
    for _ in 0..finest {
        let _ = write!(s, "{ref_ratio} ");
    }
    s.push('\n');
    // Index domains per level.
    for l in levels {
        let _ = write!(s, "{} ", format_box(&l.geom.domain));
    }
    s.push('\n');
    // Steps per level.
    for l in levels {
        let _ = write!(s, "{} ", l.level_steps);
    }
    s.push('\n');
    // Cell sizes per level.
    for l in levels {
        let dx = l.geom.dx();
        push_e17(&mut s, dx[0]);
        s.push(' ');
        push_e17(&mut s, dx[1]);
        s.push('\n');
    }
    s.push_str("0\n"); // coord sys (0 = Cartesian)
    s.push_str("0\n"); // boundary width
    for (i, l) in levels.iter().enumerate() {
        let _ = write!(s, "{} {} ", i, l.boxes.len());
        push_e17(&mut s, time);
        s.push('\n');
        let _ = writeln!(s, "{}", l.level_steps);
        let dx = l.geom.dx();
        for b in &l.boxes {
            // Physical extent of each grid, per dimension.
            #[allow(clippy::needless_range_loop)] // `dir` is a spatial dimension
            for dir in 0..2 {
                let lo = l.geom.prob_lo[dir]
                    + (b.lo().get(dir) - l.geom.domain.lo().get(dir)) as f64 * dx[dir];
                let hi = l.geom.prob_lo[dir]
                    + (b.hi().get(dir) - l.geom.domain.lo().get(dir) + 1) as f64 * dx[dir];
                push_e17(&mut s, lo);
                s.push(' ');
                push_e17(&mut s, hi);
                s.push('\n');
            }
        }
        let _ = writeln!(s, "Level_{i}/Cell");
    }
    s
}

/// One grid's entry in a `Cell_H` file: which `Cell_D` file holds it and at
/// what byte offset.
pub struct FabOnDisk {
    /// File name relative to the level directory, e.g. `Cell_D_00003`.
    pub file: String,
    /// Byte offset of the FAB record inside that file.
    pub offset: u64,
}

/// Builds a per-level `Cell_H` metadata file.
///
/// Layout follows AMReX's `VisMF::Header` stream format: version, how,
/// component count, ghost cells, the box array, the FabOnDisk table, and
/// per-grid min/max tables.
pub fn cell_h(
    ncomp: usize,
    boxes: &[IndexBox],
    fabs_on_disk: &[FabOnDisk],
    mins: &[Vec<f64>],
    maxs: &[Vec<f64>],
) -> String {
    assert_eq!(boxes.len(), fabs_on_disk.len());
    assert_eq!(boxes.len(), mins.len());
    assert_eq!(boxes.len(), maxs.len());
    let mut s = String::with_capacity(1024);
    s.push_str("1\n"); // VisMF version
    s.push_str("1\n"); // how (one fab per...)
    let mut line = String::new();
    let _ = writeln!(line, "{ncomp}");
    s.push_str(&line);
    s.push_str("0\n"); // ngrow
    let _ = writeln!(s, "({} 0", boxes.len());
    for b in boxes {
        let _ = writeln!(s, "{}", format_box(b));
    }
    s.push_str(")\n");
    let _ = writeln!(s, "{}", boxes.len());
    for f in fabs_on_disk {
        let _ = writeln!(s, "FabOnDisk: {} {}", f.file, f.offset);
    }
    let _ = writeln!(s, "{},{}", boxes.len(), ncomp);
    for row in mins {
        for &v in row {
            push_e17(&mut s, v);
            s.push(',');
        }
        s.push('\n');
    }
    let _ = writeln!(s, "{},{}", boxes.len(), ncomp);
    for row in maxs {
        for &v in row {
            push_e17(&mut s, v);
            s.push(',');
        }
        s.push('\n');
    }
    s
}

/// Builds the `job_info` file AMReX applications drop at the plotfile
/// root: build/runtime provenance. Content is synthetic but representative
/// in size and structure.
pub fn job_info(nprocs: usize, step: u64, time: f64, inputs: &[(String, String)]) -> String {
    let mut s = String::with_capacity(1024);
    s.push_str("==============================================================================\n");
    s.push_str(" Castro Job Information (amr-proxy-io reproduction)\n");
    s.push_str("==============================================================================\n");
    let _ = writeln!(s, "number of MPI processes: {nprocs}");
    let _ = writeln!(s, "output step: {step}");
    let _ = writeln!(s, "simulation time: {time:.12e}");
    s.push('\n');
    s.push_str(" Inputs File Parameters\n");
    s.push_str("==============================================================================\n");
    for (k, v) in inputs {
        let _ = writeln!(s, "{k} = {v}");
    }
    s
}

/// The Castro Sedov plot variable set written with
/// `amr.derive_plot_vars=ALL` (conserved state + derived fields), which
/// fixes the "bytes per cell" of the workload at 8 bytes per variable.
pub fn castro_sedov_plot_vars() -> Vec<String> {
    [
        "density",
        "xmom",
        "ymom",
        "rho_E",
        "rho_e",
        "Temp",
        "pressure",
        "kineng",
        "soundspeed",
        "MachNumber",
        "entropy",
        "divu",
        "eint_E",
        "eint_e",
        "logden",
        "magmom",
        "magvel",
        "maggrav",
        "radvel",
        "x_velocity",
        "y_velocity",
        "t_sound_t_enuc",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amr_mesh::IntVect;

    #[test]
    fn box_formatting_matches_amrex() {
        let b = IndexBox::new(IntVect::new(0, 0), IntVect::new(511, 511));
        assert_eq!(format_box(&b), "((0,0) (511,511) (0,0))");
    }

    #[test]
    fn fab_header_contains_descriptor_and_box() {
        let b = IndexBox::at_origin(IntVect::splat(8));
        let h = fab_header(&b, 3);
        assert!(h.starts_with("FAB ((8, (64 11 52 0 1 12 0 1023))"));
        assert!(h.contains("((0,0) (7,7) (0,0))"));
        assert!(h.trim_end().ends_with('3'));
    }

    #[test]
    fn header_structure() {
        let g0 = Geometry::unit_square(IntVect::splat(32));
        let levels = vec![
            HeaderLevel {
                geom: g0,
                boxes: vec![g0.domain],
                level_steps: 10,
            },
            HeaderLevel {
                geom: g0.refine(IntVect::splat(2)),
                boxes: vec![IndexBox::at_origin(IntVect::splat(16))],
                level_steps: 10,
            },
        ];
        let vars = vec!["density".to_string(), "pressure".to_string()];
        let h = plotfile_header(&vars, 0.125, &levels, 2);
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines[0], "HyperCLaw-V1.1");
        assert_eq!(lines[1], "2");
        assert_eq!(lines[2], "density");
        assert_eq!(lines[3], "pressure");
        assert_eq!(lines[4], "2"); // spacedim
        assert!(lines[6].starts_with('1')); // finest level
        assert!(h.contains("Level_0/Cell"));
        assert!(h.contains("Level_1/Cell"));
        assert!(h.contains("((0,0) (31,31) (0,0))"));
        assert!(h.contains("((0,0) (63,63) (0,0))"));
    }

    #[test]
    fn cell_h_structure() {
        let boxes = vec![
            IndexBox::at_origin(IntVect::splat(8)),
            IndexBox::from_lo_size(IntVect::new(8, 0), IntVect::splat(8)),
        ];
        let fods = vec![
            FabOnDisk {
                file: "Cell_D_00000".into(),
                offset: 0,
            },
            FabOnDisk {
                file: "Cell_D_00001".into(),
                offset: 0,
            },
        ];
        let mins = vec![vec![0.0], vec![1.0]];
        let maxs = vec![vec![2.0], vec![3.0]];
        let s = cell_h(1, &boxes, &fods, &mins, &maxs);
        assert!(s.contains("(2 0"));
        assert!(s.contains("FabOnDisk: Cell_D_00000 0"));
        assert!(s.contains("FabOnDisk: Cell_D_00001 0"));
        assert!(s.contains("2,1"));
    }

    #[test]
    #[should_panic]
    fn cell_h_mismatched_tables_panic() {
        cell_h(1, &[IndexBox::at_origin(IntVect::splat(2))], &[], &[], &[]);
    }

    #[test]
    fn job_info_carries_inputs() {
        let s = job_info(
            64,
            20,
            0.05,
            &[("amr.n_cell".to_string(), "512 512".to_string())],
        );
        assert!(s.contains("number of MPI processes: 64"));
        assert!(s.contains("amr.n_cell = 512 512"));
    }

    #[test]
    fn castro_var_set_size() {
        // The correction factor f in Eq. (3) is ~23-25; with ~22 variables
        // of 8 bytes plus headers, the per-cell cost lands in that range.
        assert_eq!(castro_sedov_plot_vars().len(), 22);
    }
}
