//! Restart reading of plotfile dumps through the backend read plane.
//!
//! AMReX restarts by re-reading a dump's `Header` and per-level `Cell_D`
//! files; the read-side layout (which physical files a restart touches,
//! in what sizes) is exactly what the io-engine backends encode. This
//! module is the thin plotfile-shaped wrapper over
//! [`IoBackend::read_step`]: it reads one dump back and reports the same
//! stats shape the writer side uses, so campaign loops can time the
//! restart burst with `iosim::StorageModel::simulate_read_burst`.

use io_engine::{IoBackend, StepRead};
use iosim::ReadRequest;
use std::io;

/// Per-dump read outcome: the read-side mirror of
/// [`crate::writer::PlotfileStats`].
#[derive(Clone, Debug, Default)]
pub struct PlotfileReadStats {
    /// Physical bytes fetched from storage (encoded chunks, aggregation
    /// index tables, compression sidecars).
    pub total_bytes: u64,
    /// Logical bytes delivered to the restart (the tracker's read-plane
    /// view; codec-invariant).
    pub logical_bytes: u64,
    /// Modeled codec CPU seconds spent decoding.
    pub codec_seconds: f64,
    /// Physical files opened.
    pub nfiles: u64,
    /// The read requests issued, suitable for
    /// [`iosim::StorageModel::simulate_read_burst`].
    pub requests: Vec<ReadRequest>,
}

impl PlotfileReadStats {
    /// Builds from a backend's step read.
    pub fn from_read(read: &StepRead) -> Self {
        Self {
            total_bytes: read.stats.bytes,
            logical_bytes: read.stats.logical_bytes,
            codec_seconds: read.stats.codec_seconds,
            nfiles: read.stats.files,
            requests: read.stats.requests.clone(),
        }
    }
}

/// Restart-reads one plotfile dump back through an [`IoBackend`]:
/// `dir` and `output_counter` are the values the dump was written with
/// ([`crate::PlotfileSpec::dir`] / `output_counter`). Returns the logical
/// chunks (for round-trip verification) plus the read stats.
pub fn read_plotfile_with(
    backend: &mut dyn IoBackend,
    dir: &str,
    output_counter: u32,
) -> io::Result<(StepRead, PlotfileReadStats)> {
    let read = backend.read_step(output_counter, dir)?;
    let stats = PlotfileReadStats::from_read(&read);
    Ok((read, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{write_plotfile_with, PlotfileSpec};
    use crate::{castro_sedov_plot_vars, PlotLevel};
    use amr_mesh::prelude::*;
    use io_engine::{FilePerProcess, Payload};
    use iosim::{IoTracker, MemFs, Vfs};

    fn level_mf(n: i64, nranks: usize, ncomp: usize) -> MultiFab {
        let ba = BoxArray::single(IndexBox::at_origin(IntVect::splat(n))).max_size(n / 2);
        let dm = DistributionMapping::new(&ba, nranks, DistributionStrategy::Sfc);
        let mut mf = MultiFab::new(ba, dm, ncomp, 0);
        for c in 0..ncomp {
            mf.set_val(c, c as f64 + 0.5);
        }
        mf
    }

    #[test]
    fn plotfile_restart_read_round_trips() {
        let mf = level_mf(16, 2, 4);
        let spec = PlotfileSpec {
            dir: "/plt00000".to_string(),
            output_counter: 1,
            time: 0.0,
            var_names: castro_sedov_plot_vars(),
            ref_ratio: 2,
            levels: vec![PlotLevel {
                geom: Geometry::unit_square(IntVect::splat(16)),
                mf: &mf,
                level_steps: 0,
            }],
            inputs: vec![("amr.n_cell".into(), "16 16".into())],
        };
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut backend = FilePerProcess::new(&fs as &dyn Vfs, &tracker);
        let written = write_plotfile_with(&mut backend, &spec).unwrap();

        let (read, stats) = read_plotfile_with(&mut backend, "/plt00000", 1).unwrap();
        assert_eq!(stats.total_bytes, written.total_bytes);
        assert_eq!(stats.logical_bytes, written.logical_bytes);
        assert_eq!(stats.nfiles, written.nfiles);
        assert_eq!(stats.requests.len(), written.requests.len());
        // Every written file round-trips byte-exactly (identity path).
        for path in read.paths() {
            let logical = read.logical_content(&path).expect("materialized");
            assert_eq!(Some(logical), fs.read_file(&path), "{path}");
        }
        // The Header metadata is among the chunks.
        assert!(read.paths().iter().any(|p| p.ends_with("/Header")));
        assert_eq!(tracker.total_read_bytes(), written.logical_bytes);
    }

    #[test]
    fn account_only_layout_reads_are_modeled() {
        use crate::sizer::{account_plotfile_with, LayoutLevel, PlotfileLayout};
        let ba = BoxArray::single(IndexBox::at_origin(IntVect::splat(16))).max_size(8);
        let dm = DistributionMapping::new(&ba, 2, DistributionStrategy::Sfc);
        let layout = PlotfileLayout {
            dir: "/plt00002".to_string(),
            output_counter: 2,
            time: 0.0,
            var_names: castro_sedov_plot_vars(),
            ref_ratio: 2,
            levels: vec![LayoutLevel {
                geom: Geometry::unit_square(IntVect::splat(16)),
                ba,
                dm,
                level_steps: 0,
            }],
            inputs: Vec::new(),
        };
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut backend = FilePerProcess::new(&fs as &dyn Vfs, &tracker);
        let written = account_plotfile_with(&mut backend, &layout);
        let (read, stats) = read_plotfile_with(&mut backend, "/plt00002", 2).unwrap();
        assert_eq!(stats.total_bytes, written.total_bytes);
        // Size-only writes come back as modeled size-only reads.
        assert!(read
            .chunks
            .iter()
            .any(|c| matches!(c.payload, Payload::Size(_))));
        assert_eq!(tracker.total_read_bytes(), written.logical_bytes);
    }
}
