//! Restart and analysis reading of plotfile dumps through the backend
//! read plane.
//!
//! AMReX restarts by re-reading a dump's `Header` and per-level `Cell_D`
//! files; the read-side layout (which physical files a restart touches,
//! in what sizes) is exactly what the io-engine backends encode. This
//! module is the thin plotfile-shaped wrapper over
//! [`IoBackend::read_step`] / `read_selection`: it reads one dump (or a
//! selected subset — one level, one field, a spatial region) back and
//! reports the same stats shape the writer side uses, so campaign loops
//! can time the burst with `iosim::StorageModel::simulate_read_burst`.
//! [`region_selection`] is where spatial queries lower into the
//! io-engine's key space.

use amr_mesh::{BoxArray, DistributionMapping, IndexBox};
use io_engine::{IoBackend, KeyBox, ReadSelection, StepRead};
use iosim::ReadRequest;
use std::io;

/// Per-dump read outcome: the read-side mirror of
/// [`crate::writer::PlotfileStats`].
#[derive(Clone, Debug, Default)]
pub struct PlotfileReadStats {
    /// Physical bytes fetched from storage (encoded chunks, aggregation
    /// index tables, compression sidecars).
    pub total_bytes: u64,
    /// Logical bytes delivered to the restart (the tracker's read-plane
    /// view; codec-invariant).
    pub logical_bytes: u64,
    /// Modeled codec CPU seconds spent decoding.
    pub codec_seconds: f64,
    /// Physical files opened.
    pub nfiles: u64,
    /// The read requests issued, suitable for
    /// [`iosim::StorageModel::simulate_read_burst`].
    pub requests: Vec<ReadRequest>,
}

impl PlotfileReadStats {
    /// Builds from a backend's step read.
    pub fn from_read(read: &StepRead) -> Self {
        Self {
            total_bytes: read.stats.bytes,
            logical_bytes: read.stats.logical_bytes,
            codec_seconds: read.stats.codec_seconds,
            nfiles: read.stats.files,
            requests: read.stats.requests.clone(),
        }
    }
}

/// Restart-reads one plotfile dump back through an [`IoBackend`]:
/// `dir` and `output_counter` are the values the dump was written with
/// ([`crate::PlotfileSpec::dir`] / `output_counter`). Returns the logical
/// chunks (for round-trip verification) plus the read stats.
pub fn read_plotfile_with(
    backend: &mut dyn IoBackend,
    dir: &str,
    output_counter: u32,
) -> io::Result<(StepRead, PlotfileReadStats)> {
    let read = backend.read_step(output_counter, dir)?;
    let stats = PlotfileReadStats::from_read(&read);
    Ok((read, stats))
}

/// Selective analysis read of one plotfile dump: like
/// [`read_plotfile_with`] but fetching only the chunks of `sel` — one
/// level, one field (path substring), or a key box produced by
/// [`region_selection`].
pub fn read_plotfile_selection(
    backend: &mut dyn IoBackend,
    dir: &str,
    output_counter: u32,
    sel: &ReadSelection,
) -> io::Result<(StepRead, PlotfileReadStats)> {
    let read = backend.read_selection(output_counter, dir, sel)?;
    let stats = PlotfileReadStats::from_read(&read);
    Ok((read, stats))
}

/// Lowers a *spatial* query to the io-engine's key space: the selection
/// covering every rank whose grids at `level` intersect `region` (a box
/// of that level's index space).
///
/// The io-engine retains only `(step, level, task)` keys and paths per
/// chunk, so the cover is a contiguous task range — conservative under
/// space-filling-curve distributions, where ranks owning a spatial
/// region cluster into a near-contiguous id range. A superset cover
/// over-fetches but never misses data. Returns `None` when no grid
/// intersects the region (the empty selection).
pub fn region_selection(
    ba: &BoxArray,
    dm: &DistributionMapping,
    level: u32,
    region: &IndexBox,
) -> Option<ReadSelection> {
    let mut lo = u32::MAX;
    let mut hi = 0u32;
    for (bi, b) in ba.iter().enumerate() {
        if b.intersects(region) {
            let owner = dm.owner(bi) as u32;
            lo = lo.min(owner);
            hi = hi.max(owner);
        }
    }
    (lo <= hi).then_some(ReadSelection::Box(KeyBox {
        level_lo: level,
        level_hi: level,
        task_lo: lo,
        task_hi: hi,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{write_plotfile_with, PlotfileSpec};
    use crate::{castro_sedov_plot_vars, PlotLevel};
    use amr_mesh::prelude::*;
    use io_engine::{FilePerProcess, Payload};
    use iosim::{IoTracker, MemFs, Vfs};

    fn level_mf(n: i64, nranks: usize, ncomp: usize) -> MultiFab {
        let ba = BoxArray::single(IndexBox::at_origin(IntVect::splat(n))).max_size(n / 2);
        let dm = DistributionMapping::new(&ba, nranks, DistributionStrategy::Sfc);
        let mut mf = MultiFab::new(ba, dm, ncomp, 0);
        for c in 0..ncomp {
            mf.set_val(c, c as f64 + 0.5);
        }
        mf
    }

    #[test]
    fn plotfile_restart_read_round_trips() {
        let mf = level_mf(16, 2, 4);
        let spec = PlotfileSpec {
            dir: "/plt00000".to_string(),
            output_counter: 1,
            time: 0.0,
            var_names: castro_sedov_plot_vars(),
            ref_ratio: 2,
            levels: vec![PlotLevel {
                geom: Geometry::unit_square(IntVect::splat(16)),
                mf: &mf,
                level_steps: 0,
            }],
            inputs: vec![("amr.n_cell".into(), "16 16".into())],
        };
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut backend = FilePerProcess::new(&fs as &dyn Vfs, &tracker);
        let written = write_plotfile_with(&mut backend, &spec).unwrap();

        let (read, stats) = read_plotfile_with(&mut backend, "/plt00000", 1).unwrap();
        assert_eq!(stats.total_bytes, written.total_bytes);
        assert_eq!(stats.logical_bytes, written.logical_bytes);
        assert_eq!(stats.nfiles, written.nfiles);
        assert_eq!(stats.requests.len(), written.requests.len());
        // Every written file round-trips byte-exactly (identity path).
        for path in read.paths() {
            let logical = read.logical_content(&path).expect("materialized");
            assert_eq!(Some(logical), fs.read_file(&path), "{path}");
        }
        // The Header metadata is among the chunks.
        assert!(read.paths().iter().any(|p| p.ends_with("/Header")));
        assert_eq!(tracker.total_read_bytes(), written.logical_bytes);
    }

    #[test]
    fn account_only_layout_reads_are_modeled() {
        use crate::sizer::{account_plotfile_with, LayoutLevel, PlotfileLayout};
        let ba = BoxArray::single(IndexBox::at_origin(IntVect::splat(16))).max_size(8);
        let dm = DistributionMapping::new(&ba, 2, DistributionStrategy::Sfc);
        let layout = PlotfileLayout {
            dir: "/plt00002".to_string(),
            output_counter: 2,
            time: 0.0,
            var_names: castro_sedov_plot_vars(),
            ref_ratio: 2,
            levels: vec![LayoutLevel {
                geom: Geometry::unit_square(IntVect::splat(16)),
                ba,
                dm,
                level_steps: 0,
            }],
            inputs: Vec::new(),
        };
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut backend = FilePerProcess::new(&fs as &dyn Vfs, &tracker);
        let written = account_plotfile_with(&mut backend, &layout);
        let (read, stats) = read_plotfile_with(&mut backend, "/plt00002", 2).unwrap();
        assert_eq!(stats.total_bytes, written.total_bytes);
        // Size-only writes come back as modeled size-only reads.
        assert!(read
            .chunks
            .iter()
            .any(|c| matches!(c.payload, Payload::Size(_))));
        assert_eq!(tracker.total_read_bytes(), written.logical_bytes);
    }

    #[test]
    fn selective_read_fetches_a_subset() {
        let mf = level_mf(16, 4, 2);
        let spec = PlotfileSpec {
            dir: "/plt00000".to_string(),
            output_counter: 1,
            time: 0.0,
            var_names: vec!["a".into(), "b".into()],
            ref_ratio: 2,
            levels: vec![PlotLevel {
                geom: Geometry::unit_square(IntVect::splat(16)),
                mf: &mf,
                level_steps: 0,
            }],
            inputs: vec![],
        };
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut backend = FilePerProcess::new(&fs as &dyn Vfs, &tracker);
        let written = write_plotfile_with(&mut backend, &spec).unwrap();
        // One rank's data (the Cell_D field-file query).
        let sel = ReadSelection::Field("Cell_D_00001".into());
        let (read, stats) = read_plotfile_selection(&mut backend, "/plt00000", 1, &sel).unwrap();
        assert_eq!(read.chunks.len(), 1);
        assert!(stats.total_bytes < written.total_bytes);
        assert_eq!(stats.nfiles, 1, "only the matched file opens");
    }

    #[test]
    fn region_selection_covers_intersecting_owners() {
        // 16^2 domain in four 8^2 boxes over 4 ranks: a corner region
        // touches exactly one box/owner; the whole domain touches all.
        let ba = BoxArray::single(IndexBox::at_origin(IntVect::splat(16))).max_size(8);
        let dm = DistributionMapping::new(&ba, 4, DistributionStrategy::Sfc);
        assert_eq!(ba.len(), 4);

        let corner = IndexBox::from_lo_size(IntVect::new(0, 0), IntVect::splat(2));
        let sel = region_selection(&ba, &dm, 0, &corner).expect("corner intersects");
        let owner = ba
            .iter()
            .enumerate()
            .find(|(_, b)| b.intersects(&corner))
            .map(|(bi, _)| dm.owner(bi) as u32)
            .unwrap();
        match &sel {
            ReadSelection::Box(kb) => {
                assert_eq!((kb.level_lo, kb.level_hi), (0, 0));
                assert_eq!((kb.task_lo, kb.task_hi), (owner, owner));
            }
            other => panic!("expected a key box, got {other:?}"),
        }

        let all = IndexBox::at_origin(IntVect::splat(16));
        let sel = region_selection(&ba, &dm, 0, &all).unwrap();
        match &sel {
            ReadSelection::Box(kb) => {
                assert_eq!((kb.task_lo, kb.task_hi), (0, 3), "full cover");
            }
            other => panic!("expected a key box, got {other:?}"),
        }

        // A region outside the domain covers nothing.
        let outside = IndexBox::from_lo_size(IntVect::new(100, 100), IntVect::splat(2));
        assert!(region_selection(&ba, &dm, 0, &outside).is_none());
    }
}
