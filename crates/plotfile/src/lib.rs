//! AMReX-native plotfile writer over virtual filesystems.
//!
//! Reproduces the analysis-output file structure of the paper's Fig. 2:
//!
//! ```text
//! sedov_2d_cyl_in_cart_plt00020/
//!   Header                   <- plotfile_header()
//!   job_info                 <- job_info()
//!   Level_0/
//!     Cell_H                 <- cell_h()
//!     Cell_D_00000           <- one per task that owns data (N-to-N)
//!     ...
//!   Level_1/ ...
//! ```
//!
//! Every byte is written through an [`iosim::Vfs`] and recorded in an
//! [`iosim::IoTracker`] at `(step, level, task)` granularity, which is the
//! raw material of the paper's Eqs. (1)-(2).
//!
//! **Layer position:** one of the two proxy write paths (next to
//! `macsio`) — above `io-engine`'s pluggable backends, consumed by
//! `core`'s campaign runner. Key types: [`PlotfileSpec`] / [`PlotLevel`]
//! (writer), [`PlotfileLayout`] (account-only sizer),
//! [`PlotfileReadStats`] + [`region_selection`] (restart and selective
//! analysis reads), [`CheckpointSpec`].
//!
//! ```
//! use amr_mesh::prelude::*;
//! use iosim::{IoTracker, MemFs, Vfs};
//! use plotfile::{write_plotfile, PlotLevel, PlotfileSpec};
//!
//! let ba = BoxArray::single(IndexBox::at_origin(IntVect::splat(8)));
//! let dm = DistributionMapping::new(&ba, 1, DistributionStrategy::Sfc);
//! let mf = MultiFab::new(ba, dm, 1, 0);
//! let spec = PlotfileSpec {
//!     dir: "/plt00000".into(),
//!     output_counter: 1,
//!     time: 0.0,
//!     var_names: vec!["density".into()],
//!     ref_ratio: 2,
//!     levels: vec![PlotLevel {
//!         geom: Geometry::unit_square(IntVect::splat(8)),
//!         mf: &mf,
//!         level_steps: 0,
//!     }],
//!     inputs: vec![],
//! };
//! let fs = MemFs::new();
//! let tracker = IoTracker::new();
//! let stats = write_plotfile(&fs, &tracker, &spec).unwrap();
//! // One Cell_D + Cell_H + Header + job_info, bytes tracked exactly.
//! assert_eq!(stats.nfiles, 4);
//! assert_eq!(stats.total_bytes, fs.total_bytes());
//! assert_eq!(tracker.total_bytes(), stats.total_bytes);
//! ```

pub mod checkpoint;
pub mod format;
pub mod reader;
pub mod sizer;
pub mod writer;

pub use checkpoint::{
    account_checkpoint, account_checkpoint_with, checkpoint_header, CheckpointLevel,
    CheckpointSpec, CheckpointStats,
};
pub use format::{
    castro_sedov_plot_vars, cell_h, fab_header, format_box, job_info, plotfile_header, FabOnDisk,
    HeaderLevel,
};
pub use reader::{
    read_plotfile_selection, read_plotfile_with, region_selection, PlotfileReadStats,
};
pub use sizer::{account_plotfile, account_plotfile_with, LayoutLevel, PlotfileLayout};
pub use writer::{
    expected_payload_bytes, write_plotfile, write_plotfile_compressed, write_plotfile_with,
    PlotLevel, PlotfileSpec, PlotfileStats,
};
