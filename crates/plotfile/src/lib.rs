//! AMReX-native plotfile writer over virtual filesystems.
//!
//! Reproduces the analysis-output file structure of the paper's Fig. 2:
//!
//! ```text
//! sedov_2d_cyl_in_cart_plt00020/
//!   Header                   <- plotfile_header()
//!   job_info                 <- job_info()
//!   Level_0/
//!     Cell_H                 <- cell_h()
//!     Cell_D_00000           <- one per task that owns data (N-to-N)
//!     ...
//!   Level_1/ ...
//! ```
//!
//! Every byte is written through an [`iosim::Vfs`] and recorded in an
//! [`iosim::IoTracker`] at `(step, level, task)` granularity, which is the
//! raw material of the paper's Eqs. (1)-(2).

pub mod checkpoint;
pub mod format;
pub mod reader;
pub mod sizer;
pub mod writer;

pub use checkpoint::{
    account_checkpoint, checkpoint_header, CheckpointLevel, CheckpointSpec, CheckpointStats,
};
pub use format::{
    castro_sedov_plot_vars, cell_h, fab_header, format_box, job_info, plotfile_header, FabOnDisk,
    HeaderLevel,
};
pub use reader::{read_plotfile_with, PlotfileReadStats};
pub use sizer::{account_plotfile, account_plotfile_with, LayoutLevel, PlotfileLayout};
pub use writer::{
    expected_payload_bytes, write_plotfile, write_plotfile_compressed, write_plotfile_with,
    PlotLevel, PlotfileSpec, PlotfileStats,
};
