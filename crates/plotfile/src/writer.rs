//! N-to-N plotfile writing.
//!
//! Reproduces the output path of `amrex::WriteMultiLevelPlotfile` with the
//! paper's N-to-N pattern: at every plot step, each MPI task writes one
//! `Cell_D_<task>` file per level *where it owns data* (Fig. 2), rank 0
//! writes the `Header`, `job_info`, and per-level `Cell_H` metadata.
//! Every byte goes through a [`Vfs`] and is recorded in an [`IoTracker`]
//! under the `(step, level, task)` key the model consumes.

use crate::format::{cell_h, fab_header, job_info, plotfile_header, FabOnDisk, HeaderLevel};
use amr_mesh::{Geometry, MultiFab};
use bytes::{BufMut, BytesMut};
use io_engine::{BackendSpec, CodecSpec, FilePerProcess, IoBackend, Payload, Put};
use iosim::{IoKey, IoKind, IoTracker, Vfs, WriteRequest};
use std::io;

/// One AMR level to be written.
pub struct PlotLevel<'a> {
    /// Level geometry.
    pub geom: Geometry,
    /// Level data; valid regions are serialized.
    pub mf: &'a MultiFab,
    /// Steps taken at this level (Header bookkeeping).
    pub level_steps: u64,
}

/// Everything needed for one plotfile dump.
pub struct PlotfileSpec<'a> {
    /// Directory name, e.g. `sedov_2d_cyl_in_cart_plt00020`.
    pub dir: String,
    /// Output counter (1-based position of this dump in the run) used as
    /// the tracker's `step` key.
    pub output_counter: u32,
    /// Simulation time of the dump.
    pub time: f64,
    /// Plot variable names; the byte volume scales with this count.
    pub var_names: Vec<String>,
    /// Refinement ratio between levels.
    pub ref_ratio: i64,
    /// Levels, coarsest first.
    pub levels: Vec<PlotLevel<'a>>,
    /// Input-file parameters echoed into `job_info`.
    pub inputs: Vec<(String, String)>,
}

/// Per-dump outcome: sizes and the write requests for timing simulation.
#[derive(Clone, Debug, Default)]
pub struct PlotfileStats {
    /// Total physical bytes written (data + metadata + backend overhead).
    /// Equals the logical volume when no compression stage is active.
    pub total_bytes: u64,
    /// Logical (pre-compression) payload bytes of the dump — what the
    /// tracker records.
    pub logical_bytes: u64,
    /// Modeled codec CPU seconds spent compressing the dump (0 without a
    /// compression stage).
    pub codec_seconds: f64,
    /// Number of files created.
    pub nfiles: u64,
    /// The write requests issued (physical sizes), suitable for
    /// [`iosim::StorageModel::simulate_burst`].
    pub requests: Vec<WriteRequest>,
    /// Bytes shipped over the modeled interconnect instead of storage
    /// (in-transit backends only; 0 for every storage backend).
    pub net_bytes: u64,
    /// Link-transfer seconds for `net_bytes` on the simulated clock.
    pub net_seconds: f64,
    /// Producer seconds stalled on consumer-window back-pressure.
    pub window_stall: f64,
}

impl PlotfileStats {
    /// Builds from a backend's per-step stats.
    pub(crate) fn from_step(step: io_engine::StepStats) -> Self {
        Self {
            total_bytes: step.bytes,
            logical_bytes: step.logical_bytes,
            codec_seconds: step.codec_seconds,
            nfiles: step.files,
            requests: step.requests,
            net_bytes: step.net_bytes,
            net_seconds: step.net_seconds,
            window_stall: step.window_stall,
        }
    }
}

/// Writes one plotfile dump through `vfs`, recording into `tracker`.
///
/// Convenience wrapper over [`write_plotfile_with`] using the
/// [`FilePerProcess`] backend — byte-identical to the workspace's
/// original N-to-N writer.
pub fn write_plotfile(
    vfs: &dyn Vfs,
    tracker: &IoTracker,
    spec: &PlotfileSpec<'_>,
) -> io::Result<PlotfileStats> {
    let mut backend = FilePerProcess::new(vfs, tracker);
    write_plotfile_with(&mut backend, spec)
}

/// Writes one plotfile dump through the given backend × codec stack: the
/// compressed chunk sizes land in the physical files and requests, the
/// uncompressed-logical-size sidecar rides along as backend overhead, and
/// the tracker keeps logical accounting (see `io-engine` docs).
pub fn write_plotfile_compressed(
    vfs: &dyn Vfs,
    tracker: &IoTracker,
    spec: &PlotfileSpec<'_>,
    backend: BackendSpec,
    codec: CodecSpec,
) -> io::Result<PlotfileStats> {
    let mut stack = backend.build_with_codec(codec, vfs, tracker);
    let stats = write_plotfile_with(stack.as_mut(), spec)?;
    stack.close()?;
    Ok(stats)
}

/// Writes one plotfile dump through an [`IoBackend`].
///
/// The tracker `task` for data files is the owning rank; metadata is
/// attributed to rank 0, which is the AMReX I/O processor. The backend
/// decides the physical layout (N-to-N, aggregated subfiles, deferred
/// staging); the returned stats reflect the physical files it created.
pub fn write_plotfile_with(
    backend: &mut dyn IoBackend,
    spec: &PlotfileSpec<'_>,
) -> io::Result<PlotfileStats> {
    assert!(!spec.levels.is_empty(), "write_plotfile: no levels");
    backend.begin_step(spec.output_counter, &spec.dir);
    backend.create_dir_all(&spec.dir)?;

    let nranks = spec.levels[0].mf.distribution_map().nranks();

    // --- Per-level data and Cell_H metadata -----------------------------
    for (lev, level) in spec.levels.iter().enumerate() {
        let lev_dir = format!("{}/Level_{}", spec.dir, lev);
        backend.create_dir_all(&lev_dir)?;
        let mf = level.mf;
        let ncomp = spec.var_names.len();

        // Group boxes by owning rank; a rank with no boxes at this level
        // writes no file (the paper calls this out explicitly).
        let mut fabs_on_disk: Vec<Option<FabOnDisk>> = (0..mf.nfabs()).map(|_| None).collect();
        for rank in 0..nranks {
            let my_boxes = mf.distribution_map().boxes_of(rank);
            if my_boxes.is_empty() {
                continue;
            }
            let file_name = format!("Cell_D_{rank:05}");
            let path = format!("{lev_dir}/{file_name}");
            let mut buf = BytesMut::new();
            for &bi in &my_boxes {
                let valid = mf.valid_box(bi);
                let offset = buf.len() as u64;
                buf.put_slice(fab_header(&valid, ncomp).as_bytes());
                // Serialize the valid region, component-major, x fastest,
                // replicating the source fab's layout over its valid box.
                let fab = mf.fab(bi);
                for comp in 0..ncomp {
                    // Plot variables beyond the state's components repeat
                    // the last state component (derived fields carry the
                    // same byte cost regardless of their values).
                    let sc = comp.min(fab.ncomp() - 1);
                    for p in valid.cells() {
                        buf.put_f64_le(fab.get(p, sc));
                    }
                }
                fabs_on_disk[bi] = Some(FabOnDisk {
                    file: file_name.clone(),
                    offset,
                });
            }
            backend.put(Put {
                key: IoKey {
                    step: spec.output_counter,
                    level: lev as u32,
                    task: rank as u32,
                },
                kind: IoKind::Data,
                path,
                payload: Payload::Bytes(buf.freeze()),
            })?;
        }

        // Cell_H: box list, fab table, per-grid min/max of each variable.
        let boxes: Vec<_> = mf.box_array().iter().copied().collect();
        let fods: Vec<FabOnDisk> = fabs_on_disk
            .into_iter()
            .map(|f| f.expect("every box has an owner"))
            .collect();
        let mut mins = Vec::with_capacity(boxes.len());
        let mut maxs = Vec::with_capacity(boxes.len());
        for (bi, b) in boxes.iter().enumerate() {
            let fab = mf.fab(bi);
            let mut mn = Vec::with_capacity(ncomp);
            let mut mx = Vec::with_capacity(ncomp);
            for comp in 0..ncomp {
                let sc = comp.min(fab.ncomp() - 1);
                mn.push(fab.min_in(b, sc));
                mx.push(fab.max_in(b, sc));
            }
            mins.push(mn);
            maxs.push(mx);
        }
        let cell_h_content = cell_h(ncomp, &boxes, &fods, &mins, &maxs);
        backend.put(Put {
            key: IoKey {
                step: spec.output_counter,
                level: lev as u32,
                task: 0,
            },
            kind: IoKind::Metadata,
            path: format!("{lev_dir}/Cell_H"),
            payload: Payload::Bytes(cell_h_content.into()),
        })?;
    }

    // --- Top-level Header and job_info ----------------------------------
    let header_levels: Vec<HeaderLevel> = spec
        .levels
        .iter()
        .map(|l| HeaderLevel {
            geom: l.geom,
            boxes: l.mf.box_array().iter().copied().collect(),
            level_steps: l.level_steps,
        })
        .collect();
    let header = plotfile_header(&spec.var_names, spec.time, &header_levels, spec.ref_ratio);
    for (name, content) in [
        ("Header", header),
        (
            "job_info",
            job_info(nranks, spec.levels[0].level_steps, spec.time, &spec.inputs),
        ),
    ] {
        backend.put(Put {
            key: IoKey {
                step: spec.output_counter,
                level: 0,
                task: 0,
            },
            kind: IoKind::Metadata,
            path: format!("{}/{}", spec.dir, name),
            payload: Payload::Bytes(content.into()),
        })?;
    }

    let step = backend.end_step()?;
    Ok(PlotfileStats::from_step(step))
}

/// Expected payload bytes for a level: `cells * vars * 8` — the headerless
/// size used to sanity-check writer output in tests and benches.
pub fn expected_payload_bytes(mf: &MultiFab, nvars: usize) -> u64 {
    mf.box_array().num_pts() as u64 * nvars as u64 * 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use amr_mesh::prelude::*;
    use iosim::MemFs;

    fn level_mf(n: i64, max: i64, nranks: usize, ncomp: usize) -> MultiFab {
        let ba = BoxArray::single(IndexBox::at_origin(IntVect::splat(n))).max_size(max);
        let dm = DistributionMapping::new(&ba, nranks, DistributionStrategy::Sfc);
        let mut mf = MultiFab::new(ba, dm, ncomp, 0);
        for c in 0..ncomp {
            mf.set_val(c, c as f64 + 0.5);
        }
        mf
    }

    fn spec<'a>(mf: &'a MultiFab, vars: usize) -> PlotfileSpec<'a> {
        PlotfileSpec {
            dir: "/plt00000".to_string(),
            output_counter: 1,
            time: 0.0,
            var_names: (0..vars).map(|i| format!("var{i}")).collect(),
            ref_ratio: 2,
            levels: vec![PlotLevel {
                geom: Geometry::unit_square(IntVect::splat(32)),
                mf,
                level_steps: 0,
            }],
            inputs: vec![],
        }
    }

    #[test]
    fn writes_expected_structure() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mf = level_mf(32, 16, 2, 2);
        let stats = write_plotfile(&fs, &tracker, &spec(&mf, 2)).unwrap();
        let files = fs.list("/plt00000");
        // 2 ranks * 1 level data files + Cell_H + Header + job_info.
        assert!(files.contains(&"/plt00000/Header".to_string()));
        assert!(files.contains(&"/plt00000/job_info".to_string()));
        assert!(files.contains(&"/plt00000/Level_0/Cell_H".to_string()));
        assert!(files.contains(&"/plt00000/Level_0/Cell_D_00000".to_string()));
        assert!(files.contains(&"/plt00000/Level_0/Cell_D_00001".to_string()));
        assert_eq!(stats.nfiles, 5);
        assert_eq!(stats.total_bytes, fs.total_bytes());
    }

    #[test]
    fn data_bytes_match_payload_plus_headers() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mf = level_mf(32, 16, 1, 2);
        write_plotfile(&fs, &tracker, &spec(&mf, 2)).unwrap();
        let data = tracker.total_bytes_of(IoKind::Data);
        let payload = expected_payload_bytes(&mf, 2);
        assert!(data > payload, "FAB headers must add bytes");
        // Header overhead is small relative to payload.
        assert!(data < payload + 4 * 256);
    }

    #[test]
    fn rank_without_boxes_writes_no_file() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        // One box, four ranks: three ranks own nothing.
        let mf = level_mf(16, 16, 4, 1);
        write_plotfile(&fs, &tracker, &spec(&mf, 1)).unwrap();
        let data_files: Vec<String> = fs
            .list("/plt00000/Level_0")
            .into_iter()
            .filter(|f| f.contains("Cell_D"))
            .collect();
        assert_eq!(data_files.len(), 1);
    }

    #[test]
    fn tracker_keys_carry_step_level_task() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mf = level_mf(32, 16, 2, 1);
        let mut s = spec(&mf, 1);
        s.output_counter = 7;
        write_plotfile(&fs, &tracker, &s).unwrap();
        assert_eq!(tracker.steps(), vec![7]);
        let per_task = tracker.bytes_per_task(7, 0);
        assert_eq!(per_task.len(), 2);
        assert!(per_task.iter().all(|&b| b > 0));
    }

    #[test]
    fn fab_payload_is_little_endian_doubles() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mf = level_mf(4, 4, 1, 1);
        write_plotfile(&fs, &tracker, &spec(&mf, 1)).unwrap();
        let content = fs.read_file("/plt00000/Level_0/Cell_D_00000").unwrap();
        // Header line ends at the first newline; payload follows.
        let nl = content.iter().position(|&b| b == b'\n').unwrap();
        let payload = &content[nl + 1..];
        assert_eq!(payload.len(), 16 * 8);
        let first = f64::from_le_bytes(payload[0..8].try_into().unwrap());
        assert_eq!(first, 0.5);
    }

    #[test]
    fn header_mentions_every_level() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mf0 = level_mf(16, 16, 1, 1);
        let mf1 = level_mf(32, 16, 1, 1);
        let spec = PlotfileSpec {
            dir: "/plt00010".into(),
            output_counter: 1,
            time: 0.25,
            var_names: vec!["density".into()],
            ref_ratio: 2,
            levels: vec![
                PlotLevel {
                    geom: Geometry::unit_square(IntVect::splat(16)),
                    mf: &mf0,
                    level_steps: 10,
                },
                PlotLevel {
                    geom: Geometry::unit_square(IntVect::splat(16)).refine(IntVect::splat(2)),
                    mf: &mf1,
                    level_steps: 10,
                },
            ],
            inputs: vec![],
        };
        write_plotfile(&fs, &tracker, &spec).unwrap();
        let header = String::from_utf8(fs.read_file("/plt00010/Header").unwrap()).unwrap();
        assert!(header.contains("Level_0/Cell"));
        assert!(header.contains("Level_1/Cell"));
        // Metadata recorded separately from data.
        assert!(tracker.total_bytes_of(IoKind::Metadata) > 0);
    }

    #[test]
    fn compressed_dump_shrinks_physical_keeps_logical() {
        let mf = level_mf(32, 16, 2, 2);
        let run = |codec: CodecSpec| {
            let fs = MemFs::new();
            let tracker = IoTracker::new();
            let stats = write_plotfile_compressed(
                &fs,
                &tracker,
                &spec(&mf, 2),
                BackendSpec::FilePerProcess,
                codec,
            )
            .unwrap();
            (fs, tracker, stats)
        };
        let (_, t_id, s_id) = run(CodecSpec::Identity);
        let (fs_q, t_q, s_q) = run(CodecSpec::LossyQuant(8));
        // Logical accounting is codec-invariant (Eq. (1)/(2) samples).
        assert_eq!(t_id.export(), t_q.export());
        assert_eq!(s_id.logical_bytes, s_q.logical_bytes);
        // Physical volume shrinks; the identity path is exactly the old
        // writer (logical == physical, no codec cost, no sidecar).
        assert_eq!(s_id.total_bytes, s_id.logical_bytes);
        assert_eq!(s_id.codec_seconds, 0.0);
        assert!(s_q.total_bytes < s_id.total_bytes);
        assert!(s_q.codec_seconds > 0.0);
        // The sidecar names the data files with logical sizes.
        let sc = fs_q
            .read_file("/plt00000/compression_00001.csc")
            .expect("sidecar exists");
        let sc = String::from_utf8(sc).unwrap();
        assert!(sc.contains("Cell_D_00000"), "{sc}");
        assert!(sc.contains("quant:8"), "{sc}");
        // Metadata (Header) stays readable.
        let header = String::from_utf8(fs_q.read_file("/plt00000/Header").unwrap()).unwrap();
        assert!(header.contains("Level_0/Cell"));
    }

    #[test]
    fn sizer_and_writer_agree_under_compression() {
        use crate::sizer::{account_plotfile_with, LayoutLevel, PlotfileLayout};
        let mf = level_mf(32, 16, 2, 1);
        let fs = MemFs::new();
        let t_writer = IoTracker::new();
        let ws = write_plotfile_compressed(
            &fs,
            &t_writer,
            &spec(&mf, 1),
            BackendSpec::FilePerProcess,
            CodecSpec::LossyQuant(8),
        )
        .unwrap();

        let t_sizer = IoTracker::new();
        let layout = PlotfileLayout {
            dir: "/plt00000".into(),
            output_counter: 1,
            time: 0.0,
            var_names: vec!["var0".into()],
            ref_ratio: 2,
            levels: vec![LayoutLevel {
                geom: Geometry::unit_square(IntVect::splat(32)),
                ba: mf.box_array().clone(),
                dm: mf.distribution_map().clone(),
                level_steps: 0,
            }],
            inputs: vec![],
        };
        let throwaway = MemFs::with_retention(0);
        let mut stack = BackendSpec::FilePerProcess.build_with_codec(
            CodecSpec::LossyQuant(8),
            &throwaway as &dyn Vfs,
            &t_sizer,
        );
        let ss = account_plotfile_with(stack.as_mut(), &layout);
        // Quantized physical size is a pure function of the logical size,
        // so the oracle path prices data files identically to the writer.
        for (rw, rs) in ws.requests.iter().zip(ss.requests.iter()) {
            assert_eq!(rw.path, rs.path);
            if rw.path.contains("Cell_D") {
                assert_eq!(rw.bytes, rs.bytes, "bytes differ for {}", rw.path);
            }
        }
        assert_eq!(ws.nfiles, ss.nfiles);
    }

    #[test]
    fn requests_cover_all_files() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mf = level_mf(32, 8, 4, 1);
        let stats = write_plotfile(&fs, &tracker, &spec(&mf, 1)).unwrap();
        assert_eq!(stats.requests.len() as u64, stats.nfiles);
        let req_bytes: u64 = stats.requests.iter().map(|r| r.bytes).sum();
        assert_eq!(req_bytes, stats.total_bytes);
    }
}
