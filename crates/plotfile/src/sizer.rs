//! Size-exact plotfile accounting without materializing field data.
//!
//! The paper's largest runs produce tens of gigabytes per dump; the oracle
//! path must account for those bytes without allocating or serializing the
//! payload. The `Cell_D` byte count is deterministic — FAB headers are
//! pure functions of the box and component count, payloads are
//! `cells * vars * 8` — and the metadata files are cheap to synthesize
//! exactly. Equivalence with [`crate::writer::write_plotfile`] is enforced
//! by tests.

use crate::format::{cell_h, fab_header, job_info, plotfile_header, FabOnDisk, HeaderLevel};
use crate::writer::PlotfileStats;
use amr_mesh::{BoxArray, DistributionMapping, Geometry};
use io_engine::{FilePerProcess, IoBackend, Payload, Put};
use iosim::{IoKey, IoKind, IoTracker, MemFs, Vfs};

/// One level described by layout only (no data).
pub struct LayoutLevel {
    /// Level geometry.
    pub geom: Geometry,
    /// Grids.
    pub ba: BoxArray,
    /// Rank ownership.
    pub dm: DistributionMapping,
    /// Steps taken at this level.
    pub level_steps: u64,
}

/// Everything needed to account one plotfile dump.
pub struct PlotfileLayout {
    /// Directory name (recorded in requests, nothing is written).
    pub dir: String,
    /// Output counter used as the tracker `step` key.
    pub output_counter: u32,
    /// Simulation time.
    pub time: f64,
    /// Plot variable names.
    pub var_names: Vec<String>,
    /// Refinement ratio.
    pub ref_ratio: i64,
    /// Levels, coarsest first.
    pub levels: Vec<LayoutLevel>,
    /// Input parameters echoed into job_info.
    pub inputs: Vec<(String, String)>,
}

/// Accounts the exact bytes [`crate::writer::write_plotfile`] would write
/// for `layout`, recording into `tracker` and returning the same stats —
/// without allocating any payload.
pub fn account_plotfile(tracker: &IoTracker, layout: &PlotfileLayout) -> PlotfileStats {
    let fs = MemFs::with_retention(0);
    let mut backend = FilePerProcess::new(&fs as &dyn Vfs, tracker);
    account_plotfile_with(&mut backend, layout)
}

/// Accounts one plotfile dump through an [`IoBackend`] using size-only
/// payloads: the backend keeps its physical layout, file-count, and
/// request accounting (aggregation, deferred staging) but performs no
/// writes, so oracle-scale dumps cost no memory.
pub fn account_plotfile_with(
    backend: &mut dyn IoBackend,
    layout: &PlotfileLayout,
) -> PlotfileStats {
    assert!(!layout.levels.is_empty(), "account_plotfile: no levels");
    backend.begin_step(layout.output_counter, &layout.dir);
    let nranks = layout.levels[0].dm.nranks();
    let ncomp = layout.var_names.len();
    let put = |backend: &mut dyn IoBackend, level: u32, task: u32, kind, path: String, bytes| {
        backend
            .put(Put {
                key: IoKey {
                    step: layout.output_counter,
                    level,
                    task,
                },
                kind,
                path,
                payload: Payload::Size(bytes),
            })
            .expect("size-only puts cannot fail");
    };

    for (lev, level) in layout.levels.iter().enumerate() {
        let lev_dir = format!("{}/Level_{}", layout.dir, lev);
        // Per-rank Cell_D sizes.
        let mut fabs_on_disk: Vec<Option<FabOnDisk>> = (0..level.ba.len()).map(|_| None).collect();
        for rank in 0..nranks {
            let my_boxes = level.dm.boxes_of(rank);
            if my_boxes.is_empty() {
                continue;
            }
            let file_name = format!("Cell_D_{rank:05}");
            let path = format!("{lev_dir}/{file_name}");
            let mut bytes = 0u64;
            for &bi in &my_boxes {
                let valid = level.ba.get(bi);
                fabs_on_disk[bi] = Some(FabOnDisk {
                    file: file_name.clone(),
                    offset: bytes,
                });
                bytes += fab_header(&valid, ncomp).len() as u64;
                bytes += valid.num_pts() as u64 * ncomp as u64 * 8;
            }
            put(backend, lev as u32, rank as u32, IoKind::Data, path, bytes);
        }

        // Cell_H with zero min/max placeholders (size-representative).
        let boxes: Vec<_> = level.ba.iter().copied().collect();
        let fods: Vec<FabOnDisk> = fabs_on_disk
            .into_iter()
            .map(|f| f.expect("every box has an owner"))
            .collect();
        let zeros = vec![vec![0.0; ncomp]; boxes.len()];
        let content = cell_h(ncomp, &boxes, &fods, &zeros, &zeros);
        put(
            backend,
            lev as u32,
            0,
            IoKind::Metadata,
            format!("{lev_dir}/Cell_H"),
            content.len() as u64,
        );
    }

    // Header + job_info.
    let header_levels: Vec<HeaderLevel> = layout
        .levels
        .iter()
        .map(|l| HeaderLevel {
            geom: l.geom,
            boxes: l.ba.iter().copied().collect(),
            level_steps: l.level_steps,
        })
        .collect();
    let header = plotfile_header(
        &layout.var_names,
        layout.time,
        &header_levels,
        layout.ref_ratio,
    );
    let ji = job_info(
        nranks,
        layout.levels[0].level_steps,
        layout.time,
        &layout.inputs,
    );
    for (name, content) in [("Header", header), ("job_info", ji)] {
        put(
            backend,
            0,
            0,
            IoKind::Metadata,
            format!("{}/{}", layout.dir, name),
            content.len() as u64,
        );
    }
    let step = backend.end_step().expect("size-only steps cannot fail");
    PlotfileStats::from_step(step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{write_plotfile, PlotLevel, PlotfileSpec};
    use amr_mesh::prelude::*;
    use iosim::MemFs;

    fn ba_dm(n: i64, max: i64, nranks: usize) -> (BoxArray, DistributionMapping) {
        let ba = BoxArray::single(IndexBox::at_origin(IntVect::splat(n))).max_size(max);
        let dm = DistributionMapping::new(&ba, nranks, DistributionStrategy::Sfc);
        (ba, dm)
    }

    /// The sizer must agree with the real writer byte-for-byte on the data
    /// files and to formatting-width tolerance on metadata.
    #[test]
    fn matches_real_writer() {
        let (ba, dm) = ba_dm(64, 16, 4);
        let geom = Geometry::unit_square(IntVect::splat(64));
        let mut mf = MultiFab::new(ba.clone(), dm.clone(), 2, 0);
        // Positive O(1) values keep min/max formatting width identical to
        // the sizer's zero placeholders.
        mf.set_val(0, 1.5);
        mf.set_val(1, 2.5);

        let fs = MemFs::new();
        let t_writer = IoTracker::new();
        let spec = PlotfileSpec {
            dir: "/plt0".into(),
            output_counter: 1,
            time: 0.5,
            var_names: vec!["a".into(), "b".into()],
            ref_ratio: 2,
            levels: vec![PlotLevel {
                geom,
                mf: &mf,
                level_steps: 3,
            }],
            inputs: vec![("k".into(), "v".into())],
        };
        let ws = write_plotfile(&fs, &t_writer, &spec).unwrap();

        let t_sizer = IoTracker::new();
        let layout = PlotfileLayout {
            dir: "/plt0".into(),
            output_counter: 1,
            time: 0.5,
            var_names: vec!["a".into(), "b".into()],
            ref_ratio: 2,
            levels: vec![LayoutLevel {
                geom,
                ba,
                dm,
                level_steps: 3,
            }],
            inputs: vec![("k".into(), "v".into())],
        };
        let ss = account_plotfile(&t_sizer, &layout);

        assert_eq!(
            t_writer.total_bytes_of(IoKind::Data),
            t_sizer.total_bytes_of(IoKind::Data),
            "data bytes must match exactly"
        );
        assert_eq!(ws.nfiles, ss.nfiles);
        let meta_w = t_writer.total_bytes_of(IoKind::Metadata) as f64;
        let meta_s = t_sizer.total_bytes_of(IoKind::Metadata) as f64;
        assert!(
            (meta_w - meta_s).abs() / meta_w < 0.02,
            "metadata sizes {meta_w} vs {meta_s}"
        );
        // Request lists align file-by-file for data files.
        for (rw, rs) in ws.requests.iter().zip(ss.requests.iter()) {
            assert_eq!(rw.path, rs.path);
            if rw.path.contains("Cell_D") {
                assert_eq!(rw.bytes, rs.bytes, "bytes differ for {}", rw.path);
            }
        }
    }

    #[test]
    fn per_task_accounting_matches_ownership() {
        let (ba, dm) = ba_dm(64, 16, 3);
        let geom = Geometry::unit_square(IntVect::splat(64));
        let tracker = IoTracker::new();
        let layout = PlotfileLayout {
            dir: "/p".into(),
            output_counter: 2,
            time: 0.0,
            var_names: vec!["v".into()],
            ref_ratio: 2,
            levels: vec![LayoutLevel {
                geom,
                ba: ba.clone(),
                dm: dm.clone(),
                level_steps: 0,
            }],
            inputs: vec![],
        };
        account_plotfile(&tracker, &layout);
        let per_task = tracker.bytes_per_task(2, 0);
        #[allow(clippy::needless_range_loop)] // rank indexes two parallel views
        for rank in 0..3 {
            let cells: i64 = dm.boxes_of(rank).iter().map(|&i| ba.get(i).num_pts()).sum();
            if cells == 0 {
                assert_eq!(per_task[rank], 0);
            } else {
                assert!(per_task[rank] as i64 >= cells * 8, "rank {rank}");
            }
        }
    }

    #[test]
    fn scales_linearly_with_vars_and_cells() {
        let geom = Geometry::unit_square(IntVect::splat(32));
        let run = |n: i64, vars: usize| {
            let (ba, dm) = ba_dm(n, 16, 2);
            let tracker = IoTracker::new();
            let layout = PlotfileLayout {
                dir: "/p".into(),
                output_counter: 1,
                time: 0.0,
                var_names: (0..vars).map(|i| format!("v{i}")).collect(),
                ref_ratio: 2,
                levels: vec![LayoutLevel {
                    geom,
                    ba,
                    dm,
                    level_steps: 0,
                }],
                inputs: vec![],
            };
            account_plotfile(&tracker, &layout);
            tracker.total_bytes_of(IoKind::Data)
        };
        let base = run(32, 1);
        assert!(run(32, 2) > base * 3 / 2);
        assert!(run(64, 1) > base * 3); // 4x the cells
    }
}
