//! Sod shock-tube verification: the MUSCL–HLLC scheme against the exact
//! Riemann solution, in both sweep directions.

use amr_mesh::prelude::*;
use hydro::exact_riemann::sample_exact;
use hydro::{
    advance_level, apply_outflow_bc, GammaLaw, Primitive, NCOMP, NGROW, UEDEN, UMX, UMY, URHO,
};

/// Runs a 1-D Sod tube along direction `dir` embedded in a thin 2-D strip
/// and returns `(x_centers, numerical_density, exact_density)` at `t_end`.
fn run_sod(dir: usize, n: i64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let eos = GammaLaw::new(1.4);
    let (nx, ny) = if dir == 0 { (n, 8) } else { (8, n) };
    let geom = Geometry::new(
        IndexBox::at_origin(IntVect::new(nx, ny)),
        [0.0, 0.0],
        if dir == 0 {
            [1.0, 8.0 / n as f64]
        } else {
            [8.0 / n as f64, 1.0]
        },
    );
    let ba = BoxArray::single(geom.domain).max_size(n / 2);
    let dm = DistributionMapping::new(&ba, 1, DistributionStrategy::Sfc);
    let mut mf = MultiFab::new(ba, dm, NCOMP, NGROW);

    let wl = Primitive::new(1.0, 0.0, 0.0, 1.0);
    let wr = Primitive::new(0.125, 0.0, 0.0, 0.1);
    for i in 0..mf.nfabs() {
        let fab = mf.fab_mut(i);
        let dom = fab.domain();
        for p in dom.cells() {
            let c = geom.cell_center(p);
            let coord = c[dir];
            let w = if coord < 0.5 { wl } else { wr };
            let u = w.to_conserved(&eos);
            fab.set(p, URHO, u.rho);
            fab.set(p, UMX, u.mx);
            fab.set(p, UMY, u.my);
            fab.set(p, UEDEN, u.e);
        }
    }

    let t_end = 0.2;
    let mut t = 0.0;
    let dx = geom.dx()[dir];
    while t < t_end {
        let dt = (0.4 * dx / 2.0).min(t_end - t); // max speed < 2 for Sod
        let domain = geom.domain;
        advance_level(&mut mf, &geom, dt, &eos, |m: &mut MultiFab| {
            m.fill_boundary();
            apply_outflow_bc(m, &domain);
        });
        t += dt;
    }

    // Extract the centerline profile.
    let mut xs = Vec::new();
    let mut num = Vec::new();
    let mut exact = Vec::new();
    let mid = 4; // transverse row
    for k in 0..n {
        let p = if dir == 0 {
            IntVect::new(k, mid)
        } else {
            IntVect::new(mid, k)
        };
        for (valid, fab) in mf.iter() {
            if valid.contains(p) {
                let c = geom.cell_center(p);
                let coord = c[dir];
                xs.push(coord);
                num.push(fab.get(p, URHO));
                let xi = (coord - 0.5) / t_end;
                // The exact solver treats `u` as the normal velocity.
                let w = sample_exact(&wl, &wr, &eos, xi);
                exact.push(w.rho);
                break;
            }
        }
    }
    (xs, num, exact)
}

fn l1_error(num: &[f64], exact: &[f64]) -> f64 {
    num.iter()
        .zip(exact)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / num.len() as f64
}

#[test]
fn sod_profile_converges_to_exact_in_x() {
    let (_, num, exact) = run_sod(0, 256);
    let err = l1_error(&num, &exact);
    assert!(err < 0.012, "L1 density error {err}");
    // The shock plateau is captured: density between the contact and the
    // shock must reach ~0.2656.
    let plateau = num
        .iter()
        .zip(&exact)
        .filter(|(_, e)| (**e - 0.26557).abs() < 1e-3)
        .map(|(n, _)| *n)
        .collect::<Vec<_>>();
    assert!(!plateau.is_empty());
    let mean: f64 = plateau.iter().sum::<f64>() / plateau.len() as f64;
    assert!((mean - 0.26557).abs() < 0.02, "plateau {mean}");
}

#[test]
fn sod_profile_converges_to_exact_in_y() {
    // Dimensional symmetry: the y sweep must match the x sweep quality.
    let (_, num, exact) = run_sod(1, 256);
    let err = l1_error(&num, &exact);
    assert!(err < 0.012, "L1 density error {err}");
}

#[test]
fn sod_error_decreases_with_resolution() {
    let (_, n1, e1) = run_sod(0, 128);
    let (_, n2, e2) = run_sod(0, 512);
    let err_coarse = l1_error(&n1, &e1);
    let err_fine = l1_error(&n2, &e2);
    assert!(
        err_fine < 0.6 * err_coarse,
        "no convergence: {err_coarse} -> {err_fine}"
    );
}
