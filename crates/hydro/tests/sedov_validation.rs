//! Physics validation of the Sedov solve against the similarity solution —
//! the evidence that the large-scale oracle substitutes faithfully for the
//! PDE solver (DESIGN.md §2).

use amr_mesh::prelude::*;
use hydro::{
    AmrConfig, AmrSim, Conserved, SedovProblem, TagCriteria, TimestepControl, UEDEN, UMX, UMY, URHO,
};

fn sim(n_cell: i64, max_level: usize) -> AmrSim {
    AmrSim::new(AmrConfig {
        n_cell,
        max_level,
        grid: GridParams {
            ref_ratio: 2,
            blocking_factor: 8,
            max_grid_size: 64,
            n_error_buf: 2,
            grid_eff: 0.7,
        },
        regrid_int: 2,
        nranks: 4,
        strategy: DistributionStrategy::Sfc,
        ctrl: TimestepControl {
            cfl: 0.5,
            init_shrink: 0.5,
            change_max: 1.4,
        },
        tag: TagCriteria::default(),
        problem: SedovProblem::default(),
    })
}

/// Radius of the density maximum on level 0 (the shock front proxy).
fn density_peak_radius(sim: &AmrSim) -> f64 {
    let l0 = &sim.levels()[0];
    let mut best = (0.0f64, 0.0f64); // (rho, r)
    for (valid, fab) in l0.mf.iter() {
        for p in valid.cells() {
            let rho = fab.get(p, URHO);
            if rho > best.0 {
                let c = l0.geom.cell_center(p);
                let r = ((c[0] - 0.5f64).powi(2) + (c[1] - 0.5f64).powi(2)).sqrt();
                best = (rho, r);
            }
        }
    }
    best.1
}

#[test]
fn blast_stays_four_fold_symmetric() {
    let mut s = sim(64, 1);
    for _ in 0..30 {
        s.step();
    }
    let l0 = &s.levels()[0];
    let n = 64i64;
    // Reflecting a cell through the center must give the same density:
    // the scheme is symmetric and the IC is centered.
    for (valid, fab) in l0.mf.iter() {
        for p in valid.cells() {
            let q = IntVect::new(n - 1 - p.x, n - 1 - p.y);
            let rho_p = fab.get(p, URHO);
            let rho_q = {
                // Find the fab holding q.
                let mut v = None;
                for (vb, f2) in l0.mf.iter() {
                    if vb.contains(q) {
                        v = Some(f2.get(q, URHO));
                        break;
                    }
                }
                v.expect("mirror cell exists")
            };
            assert!(
                (rho_p - rho_q).abs() < 1e-8 * rho_p.abs().max(1.0),
                "asymmetry at {p}: {rho_p} vs {rho_q}"
            );
        }
    }
}

#[test]
fn shock_radius_tracks_similarity_solution() {
    let mut s = sim(128, 1);
    // March until the blast is well into the self-similar regime.
    let mut samples: Vec<(f64, f64)> = Vec::new();
    for _ in 0..220 {
        let info = s.step();
        if info.step.is_multiple_of(20) {
            let r = density_peak_radius(&s);
            if r > 0.08 {
                samples.push((info.time, r));
            }
        }
        if s.time() > 0.05 {
            break;
        }
    }
    assert!(
        samples.len() >= 3,
        "need self-similar samples, got {samples:?}"
    );
    // r ~ xi (E t^2 / rho)^(1/4): check the measured exponent by log-log
    // regression and the prefactor against the oracle's assumption.
    let prob = SedovProblem::default();
    for &(t, r) in &samples {
        let pred = prob.shock_radius(t);
        let rel = (r - pred).abs() / pred;
        assert!(
            rel < 0.25,
            "shock at t={t}: measured {r}, similarity {pred}, rel {rel}"
        );
    }
    // Radius grows monotonically.
    assert!(samples.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-12));
}

#[test]
fn total_energy_matches_deposit_during_expansion() {
    let mut s = sim(64, 1);
    let area = s.levels()[0].geom.cell_area();
    let e0: f64 = s.levels()[0].mf.sum(UEDEN) * area;
    for _ in 0..20 {
        s.step();
    }
    let e1: f64 = s.levels()[0].mf.sum(UEDEN) * area;
    // Energy conserved to the no-reflux tolerance while the wave is
    // interior.
    assert!((e1 - e0).abs() < 5e-3 * e0, "energy {e0} -> {e1}");
}

#[test]
fn momentum_stays_centered() {
    let mut s = sim(64, 1);
    for _ in 0..25 {
        s.step();
    }
    let l0 = &s.levels()[0];
    // Net momentum of a centered symmetric blast is zero.
    let mx: f64 = l0.mf.sum(UMX);
    let my: f64 = l0.mf.sum(UMY);
    let scale: f64 = l0
        .mf
        .iter()
        .map(|(b, f)| b.cells().map(|p| f.get(p, UMX).abs()).sum::<f64>())
        .sum::<f64>()
        .max(1e-300);
    assert!(mx.abs() / scale < 1e-8, "net x momentum {mx}");
    assert!(my.abs() / scale < 1e-8, "net y momentum {my}");
}

#[test]
fn post_shock_density_approaches_strong_shock_limit() {
    let mut s = sim(128, 1);
    for _ in 0..250 {
        s.step();
        if s.time() > 0.02 {
            break;
        }
    }
    let peak = s.levels()[0].mf.max(URHO);
    // post_shock_density() is 6 for gamma = 1.4. Numerical diffusion smears
    // the peak; it must sit well above the ambient density and below the
    // analytic limit.
    let limit = SedovProblem::default().post_shock_density();
    assert!(peak > 2.0, "peak density {peak} too low");
    assert!(
        peak < limit * 1.05,
        "peak density {peak} above RH limit {limit}"
    );
    // And the state is physical everywhere.
    for l in s.levels() {
        for (b, f) in l.mf.iter() {
            for p in b.cells() {
                let w = Conserved::new(
                    f.get(p, URHO),
                    f.get(p, UMX),
                    f.get(p, UMY),
                    f.get(p, UEDEN),
                )
                .to_primitive(s.eos());
                assert!(w.rho > 0.0 && w.p > 0.0 && w.rho.is_finite());
            }
        }
    }
}
