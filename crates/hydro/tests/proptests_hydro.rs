//! Property-based tests of the flux machinery: consistency, symmetry,
//! and physical-state preservation over randomized inputs.

use hydro::{flux, hllc_flux, sample_exact, star_state, Conserved, GammaLaw, Primitive};
use proptest::prelude::*;

fn arb_state() -> impl Strategy<Value = Primitive> {
    (0.05f64..10.0, -3.0f64..3.0, -3.0f64..3.0, 0.01f64..10.0)
        .prop_map(|(rho, u, v, p)| Primitive::new(rho, u, v, p))
}

proptest! {
    /// HLLC with identical states must return the exact physical flux
    /// (consistency with the underlying conservation law).
    #[test]
    fn hllc_is_consistent(w in arb_state(), dir in 0usize..2) {
        let eos = GammaLaw::default();
        let f_hllc = hllc_flux(&w, &w, &eos, dir);
        let f_exact = flux(&w, &eos, dir);
        let scale = 1.0 + f_exact.rho.abs() + f_exact.e.abs();
        prop_assert!((f_hllc.rho - f_exact.rho).abs() / scale < 1e-10);
        prop_assert!((f_hllc.mx - f_exact.mx).abs() / scale < 1e-10);
        prop_assert!((f_hllc.my - f_exact.my).abs() / scale < 1e-10);
        prop_assert!((f_hllc.e - f_exact.e).abs() / scale < 1e-10);
    }

    /// Mirror symmetry: flipping both states and the axis negates the
    /// mass flux.
    #[test]
    fn hllc_respects_mirror_symmetry(wl in arb_state(), wr in arb_state()) {
        let eos = GammaLaw::default();
        let f = hllc_flux(&wl, &wr, &eos, 0);
        let wl_m = Primitive::new(wr.rho, -wr.u, wr.v, wr.p);
        let wr_m = Primitive::new(wl.rho, -wl.u, wl.v, wl.p);
        let f_m = hllc_flux(&wl_m, &wr_m, &eos, 0);
        let scale = 1.0 + f.rho.abs();
        prop_assert!((f.rho + f_m.rho).abs() / scale < 1e-9,
            "mass flux must negate: {} vs {}", f.rho, f_m.rho);
        prop_assert!((f.e + f_m.e).abs() / (1.0 + f.e.abs()) < 1e-9);
    }

    /// Primitive <-> conserved conversion round-trips for physical states.
    #[test]
    fn state_round_trip(w in arb_state()) {
        let eos = GammaLaw::default();
        let u = w.to_conserved(&eos);
        let w2 = u.to_primitive(&eos);
        prop_assert!((w.rho - w2.rho).abs() < 1e-10 * w.rho);
        prop_assert!((w.p - w2.p).abs() < 1e-8 * w.p.max(1.0));
        prop_assert!((w.u - w2.u).abs() < 1e-10 * (1.0 + w.u.abs()));
    }

    /// The exact Riemann star state is physical and the sampled solution
    /// is continuous in pressure/velocity across the contact.
    #[test]
    fn star_state_is_physical(wl in arb_state(), wr in arb_state()) {
        let eos = GammaLaw::default();
        // Skip vacuum-forming data (the solver's documented domain).
        let cl = wl.sound_speed(&eos);
        let cr = wr.sound_speed(&eos);
        prop_assume!(2.0 * cl / 0.4 + 2.0 * cr / 0.4 > wr.u - wl.u);
        let (p_star, u_star) = star_state(&wl, &wr, &eos);
        prop_assert!(p_star > 0.0, "p* = {p_star}");
        prop_assert!(u_star.is_finite());
        let eps = 1e-7;
        let a = sample_exact(&wl, &wr, &eos, u_star - eps);
        let b = sample_exact(&wl, &wr, &eos, u_star + eps);
        prop_assert!((a.p - b.p).abs() / p_star < 1e-3,
            "pressure continuous across contact: {} vs {}", a.p, b.p);
        prop_assert!((a.u - b.u).abs() < 1e-3 * (1.0 + u_star.abs()));
        prop_assert!(a.rho > 0.0 && b.rho > 0.0);
    }

    /// Far-field sampling recovers the unperturbed inputs.
    #[test]
    fn far_field_recovers_inputs(wl in arb_state(), wr in arb_state()) {
        let eos = GammaLaw::default();
        let cl = wl.sound_speed(&eos);
        let cr = wr.sound_speed(&eos);
        prop_assume!(2.0 * cl / 0.4 + 2.0 * cr / 0.4 > wr.u - wl.u);
        let far = 10.0 * (cl + cr + wl.u.abs() + wr.u.abs());
        let l = sample_exact(&wl, &wr, &eos, -far);
        let r = sample_exact(&wl, &wr, &eos, far);
        prop_assert!((l.rho - wl.rho).abs() < 1e-9);
        prop_assert!((r.rho - wr.rho).abs() < 1e-9);
    }

    /// Conserved floors never produce NaN, whatever garbage comes in.
    #[test]
    fn floors_are_nan_free(
        rho in -1.0f64..10.0,
        mx in -100.0f64..100.0,
        my in -100.0f64..100.0,
        e in -10.0f64..100.0,
    ) {
        let eos = GammaLaw::default();
        let w = Conserved::new(rho, mx, my, e).to_primitive(&eos);
        prop_assert!(w.rho > 0.0 && w.rho.is_finite());
        prop_assert!(w.p > 0.0 && w.p.is_finite());
        prop_assert!(w.u.is_finite() && w.v.is_finite());
    }
}
