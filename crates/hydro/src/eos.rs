//! Gamma-law equation of state.
//!
//! Castro's Sedov setup uses an ideal gas; this mirrors the `gamma_law`
//! EOS with a configurable ratio of specific heats.

use serde::{Deserialize, Serialize};

/// Ideal-gas EOS: `p = (gamma - 1) rho e`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GammaLaw {
    /// Ratio of specific heats.
    pub gamma: f64,
}

impl Default for GammaLaw {
    fn default() -> Self {
        Self { gamma: 1.4 }
    }
}

impl GammaLaw {
    /// Creates an EOS with the given `gamma`.
    ///
    /// # Panics
    /// Panics unless `gamma > 1`.
    pub fn new(gamma: f64) -> Self {
        assert!(gamma > 1.0, "GammaLaw: gamma must exceed 1, got {gamma}");
        Self { gamma }
    }

    /// Pressure from density and specific internal energy.
    #[inline]
    pub fn pressure(&self, rho: f64, e_int: f64) -> f64 {
        (self.gamma - 1.0) * rho * e_int
    }

    /// Specific internal energy from density and pressure.
    #[inline]
    pub fn internal_energy(&self, rho: f64, p: f64) -> f64 {
        p / ((self.gamma - 1.0) * rho)
    }

    /// Adiabatic sound speed.
    #[inline]
    pub fn sound_speed(&self, rho: f64, p: f64) -> f64 {
        (self.gamma * p / rho).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_energy_round_trip() {
        let eos = GammaLaw::new(1.4);
        let (rho, p) = (1.3, 2.7);
        let e = eos.internal_energy(rho, p);
        assert!((eos.pressure(rho, e) - p).abs() < 1e-14);
    }

    #[test]
    fn sound_speed_scales() {
        let eos = GammaLaw::default();
        let c1 = eos.sound_speed(1.0, 1.0);
        let c2 = eos.sound_speed(1.0, 4.0);
        assert!((c2 / c1 - 2.0).abs() < 1e-14);
        assert!((c1 * c1 - 1.4).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "gamma must exceed 1")]
    fn bad_gamma_panics() {
        GammaLaw::new(1.0);
    }
}
