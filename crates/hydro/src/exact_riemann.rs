//! Exact Riemann solver for the 1-D Euler equations (Toro, ch. 4).
//!
//! Used as ground truth to verify the HLLC/MUSCL scheme on the Sod shock
//! tube — the standard Castro verification problem — which in turn
//! underwrites trusting the solver's Sedov shock positions (and therefore
//! the oracle's grid geometry).

use crate::eos::GammaLaw;
use crate::state::Primitive;

/// Exact solution of the Riemann problem `(wl, wr)` sampled at the
/// similarity coordinate `xi = x / t`.
///
/// Returns the primitive state on the ray `x/t = xi` (velocity component
/// `u` is the normal velocity; `v` is passively advected).
pub fn sample_exact(wl: &Primitive, wr: &Primitive, eos: &GammaLaw, xi: f64) -> Primitive {
    let g = eos.gamma;
    let (p_star, u_star) = star_state(wl, wr, eos);

    if xi <= u_star {
        // Left of the contact.
        left_side(wl, p_star, u_star, g, xi)
    } else {
        // Right of the contact: mirror the left-side logic.
        let wr_m = Primitive::new(wr.rho, -wr.u, wr.v, wr.p);
        let w = left_side(&wr_m, p_star, -u_star, g, -xi);
        Primitive::new(w.rho, -w.u, wr.v, w.p)
    }
}

fn left_side(wl: &Primitive, p_star: f64, u_star: f64, g: f64, xi: f64) -> Primitive {
    let cl = (g * wl.p / wl.rho).sqrt();
    if p_star > wl.p {
        // Left shock.
        let ratio = p_star / wl.p;
        let sl = wl.u - cl * ((g + 1.0) / (2.0 * g) * ratio + (g - 1.0) / (2.0 * g)).sqrt();
        if xi <= sl {
            *wl
        } else {
            let rho =
                wl.rho * (ratio + (g - 1.0) / (g + 1.0)) / ((g - 1.0) / (g + 1.0) * ratio + 1.0);
            Primitive::new(rho, u_star, wl.v, p_star)
        }
    } else {
        // Left rarefaction.
        let c_star = cl * (p_star / wl.p).powf((g - 1.0) / (2.0 * g));
        let head = wl.u - cl;
        let tail = u_star - c_star;
        if xi <= head {
            *wl
        } else if xi >= tail {
            let rho = wl.rho * (p_star / wl.p).powf(1.0 / g);
            Primitive::new(rho, u_star, wl.v, p_star)
        } else {
            // Inside the fan.
            let u = (2.0 / (g + 1.0)) * (cl + (g - 1.0) / 2.0 * wl.u + xi);
            let c = (2.0 / (g + 1.0)) * (cl + (g - 1.0) / 2.0 * (wl.u - xi));
            let rho = wl.rho * (c / cl).powf(2.0 / (g - 1.0));
            let p = wl.p * (c / cl).powf(2.0 * g / (g - 1.0));
            Primitive::new(rho, u, wl.v, p)
        }
    }
}

/// Star-region pressure and velocity via Newton iteration on the pressure
/// function (Toro eq. 4.5), with a two-rarefaction initial guess.
pub fn star_state(wl: &Primitive, wr: &Primitive, eos: &GammaLaw) -> (f64, f64) {
    let g = eos.gamma;
    let cl = (g * wl.p / wl.rho).sqrt();
    let cr = (g * wr.p / wr.rho).sqrt();

    // f_K(p) and its derivative for one side.
    let side = |p: f64, w: &Primitive, c: f64| -> (f64, f64) {
        if p > w.p {
            // Shock branch.
            let a = 2.0 / ((g + 1.0) * w.rho);
            let b = (g - 1.0) / (g + 1.0) * w.p;
            let f = (p - w.p) * (a / (p + b)).sqrt();
            let df = (a / (p + b)).sqrt() * (1.0 - (p - w.p) / (2.0 * (p + b)));
            (f, df)
        } else {
            // Rarefaction branch.
            let pr = p / w.p;
            let f = 2.0 * c / (g - 1.0) * (pr.powf((g - 1.0) / (2.0 * g)) - 1.0);
            let df = 1.0 / (w.rho * c) * pr.powf(-(g + 1.0) / (2.0 * g));
            (f, df)
        }
    };

    // Two-rarefaction guess (robust for Sod-like data).
    let z = (g - 1.0) / (2.0 * g);
    let p0 = ((cl + cr - 0.5 * (g - 1.0) * (wr.u - wl.u))
        / (cl / wl.p.powf(z) + cr / wr.p.powf(z)))
    .powf(1.0 / z)
    .max(1e-12);

    let mut p = p0;
    for _ in 0..40 {
        let (fl, dfl) = side(p, wl, cl);
        let (fr, dfr) = side(p, wr, cr);
        let f = fl + fr + (wr.u - wl.u);
        let df = dfl + dfr;
        let p_new = (p - f / df).max(1e-12);
        if (p_new - p).abs() / (0.5 * (p_new + p)) < 1e-12 {
            p = p_new;
            break;
        }
        p = p_new;
    }
    let (fl, _) = side(p, wl, cl);
    let (fr, _) = side(p, wr, cr);
    let u = 0.5 * (wl.u + wr.u) + 0.5 * (fr - fl);
    (p, u)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eos() -> GammaLaw {
        GammaLaw::new(1.4)
    }

    /// Toro's Test 1 (the Sod problem): known star-state values.
    #[test]
    fn sod_star_state_matches_toro() {
        let wl = Primitive::new(1.0, 0.0, 0.0, 1.0);
        let wr = Primitive::new(0.125, 0.0, 0.0, 0.1);
        let (p, u) = star_state(&wl, &wr, &eos());
        assert!((p - 0.30313).abs() < 5e-5, "p* = {p}");
        assert!((u - 0.92745).abs() < 5e-5, "u* = {u}");
    }

    /// Toro's Test 2 (123 problem): two strong rarefactions.
    #[test]
    fn double_rarefaction_star_state() {
        let wl = Primitive::new(1.0, -2.0, 0.0, 0.4);
        let wr = Primitive::new(1.0, 2.0, 0.0, 0.4);
        let (p, u) = star_state(&wl, &wr, &eos());
        assert!((p - 0.00189).abs() < 5e-5, "p* = {p}");
        assert!(u.abs() < 1e-10, "u* = {u} (symmetric)");
    }

    /// Toro's Test 3: strong left shock-tube (p = 1000).
    #[test]
    fn strong_blast_star_state() {
        let wl = Primitive::new(1.0, 0.0, 0.0, 1000.0);
        let wr = Primitive::new(1.0, 0.0, 0.0, 0.01);
        let (p, u) = star_state(&wl, &wr, &eos());
        assert!((p - 460.894).abs() < 0.1, "p* = {p}");
        assert!((u - 19.5975).abs() < 0.01, "u* = {u}");
    }

    #[test]
    fn uniform_state_is_preserved() {
        let w = Primitive::new(1.3, 0.4, 0.1, 2.0);
        let s = sample_exact(&w, &w, &eos(), 0.4);
        assert!((s.rho - w.rho).abs() < 1e-10);
        assert!((s.u - w.u).abs() < 1e-10);
        assert!((s.p - w.p).abs() < 1e-10);
    }

    #[test]
    fn sod_sampling_is_consistent() {
        let wl = Primitive::new(1.0, 0.0, 0.0, 1.0);
        let wr = Primitive::new(0.125, 0.0, 0.0, 0.1);
        // Far left / right recover inputs.
        let l = sample_exact(&wl, &wr, &eos(), -10.0);
        assert!((l.rho - 1.0).abs() < 1e-12);
        let r = sample_exact(&wl, &wr, &eos(), 10.0);
        assert!((r.rho - 0.125).abs() < 1e-12);
        // Pressure and velocity are continuous across the contact.
        let (_, u_star) = star_state(&wl, &wr, &eos());
        let just_left = sample_exact(&wl, &wr, &eos(), u_star - 1e-9);
        let just_right = sample_exact(&wl, &wr, &eos(), u_star + 1e-9);
        assert!((just_left.p - just_right.p).abs() < 1e-4);
        assert!((just_left.u - just_right.u).abs() < 1e-4);
        // Density jumps across the contact (Sod: ~0.42632 / ~0.26557).
        assert!((just_left.rho - 0.42632).abs() < 5e-4, "{}", just_left.rho);
        assert!(
            (just_right.rho - 0.26557).abs() < 5e-4,
            "{}",
            just_right.rho
        );
    }

    #[test]
    fn rarefaction_fan_is_smooth() {
        let wl = Primitive::new(1.0, 0.0, 0.0, 1.0);
        let wr = Primitive::new(0.125, 0.0, 0.0, 0.1);
        // Sample through the left fan; density decreases monotonically.
        let mut prev = f64::MAX;
        for i in 0..20 {
            let xi = -1.18 + i as f64 * 0.05; // head ~ -1.183, tail ~ -0.07
            let s = sample_exact(&wl, &wr, &eos(), xi);
            assert!(s.rho <= prev + 1e-12);
            prev = s.rho;
        }
    }
}
