//! Sedov blast-wave problem setup and similarity solution.
//!
//! The paper's pivot workload: the Castro `Sedov` hydro test, 2-D cylinder
//! in Cartesian coordinates (a cylindrical charge viewed in the x-y
//! plane). This module provides the initial conditions and the
//! Sedov–Taylor similarity solution used by the large-scale oracle.

use crate::eos::GammaLaw;
use crate::state::{Primitive, NCOMP, UEDEN, UMX, UMY, URHO};
use amr_mesh::{Geometry, MultiFab};
use serde::{Deserialize, Serialize};

/// Sedov problem parameters (Castro `probin` names).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SedovProblem {
    /// Ambient density (`dens_ambient`).
    pub dens_ambient: f64,
    /// Ambient pressure (`p_ambient`).
    pub p_ambient: f64,
    /// Total deposited blast energy per unit length (`exp_energy`).
    pub exp_energy: f64,
    /// Initial radius of the energy deposit (`r_init`), in domain units.
    pub r_init: f64,
    /// Blast center in physical coordinates.
    pub center: [f64; 2],
    /// Ratio of specific heats.
    pub gamma: f64,
}

impl Default for SedovProblem {
    /// The Castro 2-D `cyl_in_cartcoords` setup: unit ambient density,
    /// cold background, unit blast energy at the domain center.
    fn default() -> Self {
        Self {
            dens_ambient: 1.0,
            p_ambient: 1e-5,
            exp_energy: 1.0,
            r_init: 0.01,
            center: [0.5, 0.5],
            gamma: 1.4,
        }
    }
}

impl SedovProblem {
    /// The EOS implied by the problem.
    pub fn eos(&self) -> GammaLaw {
        GammaLaw::new(self.gamma)
    }

    /// Effective deposit radius for a grid of spacing `dx`: at least
    /// `r_init` but never under-resolved (Castro smooths the deposit over
    /// a few fine cells for the same reason).
    pub fn deposit_radius(&self, dx: f64) -> f64 {
        self.r_init.max(2.5 * dx)
    }

    /// Fills a level's conserved state with the initial condition.
    ///
    /// Cells inside the deposit radius share the blast energy uniformly
    /// (energy density `E / (pi r^2)` for the cylindrical charge); all
    /// cells start at ambient density and zero velocity.
    pub fn init_level(&self, mf: &mut MultiFab, geom: &Geometry) {
        assert_eq!(mf.ncomp(), NCOMP, "init_level: wrong component count");
        let eos = self.eos();
        let dx = geom.dx();
        let r_dep = self.deposit_radius(dx[0].max(dx[1]));
        let e_blast = self.exp_energy / (std::f64::consts::PI * r_dep * r_dep);
        let ambient =
            Primitive::new(self.dens_ambient, 0.0, 0.0, self.p_ambient).to_conserved(&eos);
        let e_ambient = ambient.e;
        let nfabs = mf.nfabs();
        for i in 0..nfabs {
            let fab = mf.fab_mut(i);
            let dom = fab.domain();
            for p in dom.cells() {
                let c = geom.cell_center(p);
                let r = ((c[0] - self.center[0]).powi(2) + (c[1] - self.center[1]).powi(2)).sqrt();
                fab.set(p, URHO, self.dens_ambient);
                fab.set(p, UMX, 0.0);
                fab.set(p, UMY, 0.0);
                let e = if r <= r_dep {
                    self.dens_ambient * eos.internal_energy(self.dens_ambient, 1.0) * 0.0 + e_blast
                } else {
                    e_ambient
                };
                fab.set(p, UEDEN, e);
            }
        }
    }

    /// Sedov–Taylor shock radius at time `t` for the 2-D (cylindrical)
    /// blast: `r_s(t) = xi0 * (E t^2 / rho)^(1/4)`.
    ///
    /// `xi0` is the dimensionless similarity constant; for `gamma = 1.4`
    /// in cylindrical symmetry it is close to 1 (we use 1.0, adequate for
    /// workload geometry).
    pub fn shock_radius(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return self.deposit_radius(0.0);
        }
        (self.exp_energy * t * t / self.dens_ambient).powf(0.25)
    }

    /// Shock speed `dr_s/dt` at time `t` (infinite at `t = 0` is clamped
    /// by evaluating from the deposit radius).
    pub fn shock_speed(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return f64::INFINITY;
        }
        0.5 * self.shock_radius(t) / t
    }

    /// Time at which the shock reaches radius `r` (inverse of
    /// [`SedovProblem::shock_radius`]).
    pub fn time_at_radius(&self, r: f64) -> f64 {
        (r.powi(4) * self.dens_ambient / self.exp_energy).sqrt()
    }

    /// Immediate post-shock density from the strong-shock Rankine–Hugoniot
    /// jump: `rho2 = rho1 (gamma+1)/(gamma-1)`.
    pub fn post_shock_density(&self) -> f64 {
        self.dens_ambient * (self.gamma + 1.0) / (self.gamma - 1.0)
    }

    /// Immediate post-shock pressure for a shock moving at speed `us`:
    /// `p2 = 2 rho1 us^2 / (gamma+1)`.
    pub fn post_shock_pressure(&self, us: f64) -> f64 {
        2.0 * self.dens_ambient * us * us / (self.gamma + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::NGROW;
    use amr_mesh::prelude::*;

    fn make_level(n: i64) -> (MultiFab, Geometry) {
        let geom = Geometry::unit_square(IntVect::splat(n));
        let ba = BoxArray::single(geom.domain).max_size(n);
        let dm = DistributionMapping::new(&ba, 1, DistributionStrategy::Sfc);
        (MultiFab::new(ba, dm, NCOMP, NGROW), geom)
    }

    #[test]
    fn init_deposits_total_energy() {
        let prob = SedovProblem::default();
        let (mut mf, geom) = make_level(128);
        prob.init_level(&mut mf, &geom);
        let total_e = mf.sum(UEDEN) * geom.cell_area();
        // Total energy ~ exp_energy up to pixelation of the small deposit
        // disc (only ~20 cells at this resolution); ambient energy is
        // negligible.
        assert!(
            (total_e - prob.exp_energy).abs() < 0.25 * prob.exp_energy,
            "E = {total_e}"
        );
    }

    #[test]
    fn init_is_ambient_far_away() {
        let prob = SedovProblem::default();
        let (mut mf, geom) = make_level(64);
        prob.init_level(&mut mf, &geom);
        let corner = mf.fab(0).get(IntVect::new(0, 0), URHO);
        assert_eq!(corner, 1.0);
        let e_corner = mf.fab(0).get(IntVect::new(0, 0), UEDEN);
        assert!(e_corner < 1e-3);
        assert_eq!(mf.fab(0).get(IntVect::new(0, 0), UMX), 0.0);
    }

    #[test]
    fn shock_radius_grows_as_sqrt_t() {
        let prob = SedovProblem::default();
        let r1 = prob.shock_radius(0.01);
        let r2 = prob.shock_radius(0.04);
        assert!((r2 / r1 - 2.0).abs() < 1e-12, "t^(1/2) scaling in 2D");
    }

    #[test]
    fn time_radius_round_trip() {
        let prob = SedovProblem::default();
        let t = prob.time_at_radius(0.3);
        assert!((prob.shock_radius(t) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn shock_speed_decays() {
        let prob = SedovProblem::default();
        assert!(prob.shock_speed(0.01) > prob.shock_speed(0.02));
        assert!(prob.shock_speed(0.0).is_infinite());
    }

    #[test]
    fn strong_shock_jump_for_gamma_14() {
        let prob = SedovProblem::default();
        assert!((prob.post_shock_density() - 6.0).abs() < 1e-12);
        let us = 10.0;
        assert!((prob.post_shock_pressure(us) - 2.0 * 100.0 / 2.4).abs() < 1e-9);
    }

    #[test]
    fn deposit_radius_respects_resolution() {
        let prob = SedovProblem::default();
        assert_eq!(prob.deposit_radius(1.0 / 4096.0), 0.01);
        assert!(prob.deposit_radius(1.0 / 32.0) > 0.01);
    }
}
