//! Castro-like 2-D compressible hydrodynamics with block-structured AMR.
//!
//! The paper's workload generator: the Sedov blast-wave problem solved on
//! an adaptively refined hierarchy, reproducing the grid evolution that
//! drives AMReX-Castro's plotfile I/O. Two interchangeable drivers:
//!
//! * [`AmrSim`] — a real second-order Godunov (MUSCL + HLLC) solve with
//!   gradient tagging and Berger–Rigoutsos regridding (exact, used up to
//!   ~512 squared level-0 cells);
//! * [`OracleSim`] — the Sedov–Taylor similarity solution driving the same
//!   grid-generation machinery analytically (paper-scale meshes).
//!
//! Both produce the same level/grid/ownership structure consumed by the
//! `plotfile` writer, so byte accounting is identical in kind.
//!
//! **Layer position:** workload generator — above the `amr-mesh`
//! substrate, below `core`'s campaign orchestration; it never performs
//! I/O itself, it only evolves the hierarchy the writers serialize. Key
//! types: [`AmrSim`], [`OracleSim`], [`SedovProblem`],
//! [`TimestepControl`], [`StepInfo`].
//!
//! ```
//! use hydro::{OracleConfig, OracleSim};
//!
//! // A small Sedov oracle: the blast refines the center immediately.
//! let mut sim = OracleSim::new(OracleConfig {
//!     n_cell: 32,
//!     max_level: 2,
//!     ..Default::default()
//! });
//! let info = sim.step();
//! assert_eq!(info.step, 1);
//! assert!(sim.levels().len() >= 2, "refined levels exist");
//! assert!(sim.time() > 0.0);
//! ```

pub mod amr;
pub mod eos;
pub mod exact_riemann;
pub mod oracle;
pub mod riemann;
pub mod sedov;
pub mod solver;
pub mod state;
pub mod tagging;
pub mod timestep;

pub use amr::{
    average_down, interp_ghosts_from_coarse, prolongate, AmrConfig, AmrSim, Level, StepInfo,
};
pub use eos::GammaLaw;
pub use exact_riemann::{sample_exact, star_state};
pub use oracle::{annulus_fine_grids, OracleConfig, OracleLevel, OracleSim};
pub use riemann::hllc_flux;
pub use sedov::SedovProblem;
pub use solver::{advance_level, apply_outflow_bc, sweep_fab, NGROW};
pub use state::{flux, Conserved, Primitive, NCOMP, UEDEN, UMX, UMY, URHO};
pub use tagging::{tag_gradients, TagCriteria};
pub use timestep::{cfl_dt, limit_dt, TimestepControl};
