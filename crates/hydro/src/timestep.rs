//! CFL time-step control.
//!
//! Reproduces Castro's step-size logic, which the paper identifies as an
//! I/O driver: `castro.cfl` changes how far the blast travels per step,
//! which changes the refined area at each plot step and therefore the
//! bytes written (Fig. 6).

use crate::eos::GammaLaw;
use crate::state::{Conserved, UEDEN, UMX, UMY, URHO};
use amr_mesh::{Geometry, MultiFab};
use serde::{Deserialize, Serialize};

/// Time-step controller parameters (Castro input names).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimestepControl {
    /// CFL number (`castro.cfl`).
    pub cfl: f64,
    /// First-step shrink factor (`castro.init_shrink`).
    pub init_shrink: f64,
    /// Maximum growth of `dt` between steps (`castro.change_max`).
    pub change_max: f64,
}

impl Default for TimestepControl {
    /// Listing 2 defaults: `cfl = 0.5`, `init_shrink = 0.01`,
    /// `change_max = 1.1`.
    fn default() -> Self {
        Self {
            cfl: 0.5,
            init_shrink: 0.01,
            change_max: 1.1,
        }
    }
}

/// Largest stable `dt` for one level under the CFL condition:
/// `cfl * min over cells, dirs of dx_d / (|u_d| + c)`.
pub fn cfl_dt(mf: &MultiFab, geom: &Geometry, eos: &GammaLaw, cfl: f64) -> f64 {
    let dx = geom.dx();
    let mut dt = f64::INFINITY;
    for (valid, fab) in mf.iter() {
        for p in valid.cells() {
            let w = Conserved::new(
                fab.get(p, URHO),
                fab.get(p, UMX),
                fab.get(p, UMY),
                fab.get(p, UEDEN),
            )
            .to_primitive(eos);
            let c = w.sound_speed(eos);
            dt = dt.min(dx[0] / (w.u.abs() + c));
            dt = dt.min(dx[1] / (w.v.abs() + c));
        }
    }
    cfl * dt
}

/// Applies Castro's step-to-step limiting: the first step is shrunk by
/// `init_shrink`; later steps may grow at most `change_max` per step.
pub fn limit_dt(ctrl: &TimestepControl, dt_cfl: f64, dt_prev: Option<f64>) -> f64 {
    match dt_prev {
        None => dt_cfl * ctrl.init_shrink,
        Some(prev) => dt_cfl.min(prev * ctrl.change_max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::NGROW;
    use crate::state::{Primitive, NCOMP};
    use amr_mesh::prelude::*;

    fn static_mf(n: i64, p: f64) -> (MultiFab, Geometry) {
        let geom = Geometry::unit_square(IntVect::splat(n));
        let ba = BoxArray::single(geom.domain).max_size(n);
        let dm = DistributionMapping::new(&ba, 1, DistributionStrategy::Sfc);
        let mut mf = MultiFab::new(ba, dm, NCOMP, NGROW);
        let eos = GammaLaw::default();
        let u = Primitive::new(1.0, 0.0, 0.0, p).to_conserved(&eos);
        mf.set_val(URHO, u.rho);
        mf.set_val(UEDEN, u.e);
        (mf, geom)
    }

    #[test]
    fn static_gas_dt_is_dx_over_c() {
        let eos = GammaLaw::default();
        let (mf, geom) = static_mf(32, 1.0);
        let dt = cfl_dt(&mf, &geom, &eos, 1.0);
        let expect = geom.dx()[0] / eos.sound_speed(1.0, 1.0);
        assert!((dt - expect).abs() < 1e-14);
    }

    #[test]
    fn cfl_scales_linearly() {
        let eos = GammaLaw::default();
        let (mf, geom) = static_mf(32, 1.0);
        let a = cfl_dt(&mf, &geom, &eos, 0.3);
        let b = cfl_dt(&mf, &geom, &eos, 0.6);
        assert!((b / a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hotter_gas_shrinks_dt() {
        let eos = GammaLaw::default();
        let (mf1, geom) = static_mf(32, 1.0);
        let (mf2, _) = static_mf(32, 100.0);
        assert!(cfl_dt(&mf2, &geom, &eos, 0.5) < cfl_dt(&mf1, &geom, &eos, 0.5));
    }

    #[test]
    fn first_step_is_shrunk() {
        let ctrl = TimestepControl::default();
        assert!((limit_dt(&ctrl, 1.0, None) - 0.01).abs() < 1e-15);
    }

    #[test]
    fn growth_is_capped() {
        let ctrl = TimestepControl::default();
        assert!((limit_dt(&ctrl, 1.0, Some(0.01)) - 0.011).abs() < 1e-15);
        // When CFL dt is the binding constraint, it wins.
        assert!((limit_dt(&ctrl, 0.005, Some(0.01)) - 0.005).abs() < 1e-15);
    }
}
