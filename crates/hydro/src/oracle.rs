//! Analytic Sedov workload oracle.
//!
//! The paper's largest runs (8192² and beyond, up to 512 Summit nodes) are
//! out of reach for a direct PDE solve in this environment. The I/O signal,
//! however, is the *grid hierarchy* per plot step, and for the Sedov blast
//! that hierarchy is a refined annulus tracking the analytically known
//! shock front. This module generates the same hierarchy without solving:
//!
//! * time stepping uses the same CFL controller, driven by the similarity
//!   solution's post-shock signal speed;
//! * refinement regions are annuli `|r - r_s(t)| <= w` per level;
//! * annulus coverage is produced at blocking-factor granularity with the
//!   same alignment / `max_grid_size` chopping as [`make_fine_grids`]
//!   (Berger–Rigoutsos is replaced by exact row-run coverage of the
//!   annulus — the one documented substitution, see DESIGN.md).
//!
//! The small-scale agreement between this oracle and the real solver is
//! checked by integration tests and the `fig11` bench.

use crate::amr::StepInfo;
use crate::sedov::SedovProblem;
use crate::timestep::{limit_dt, TimestepControl};
use amr_mesh::prelude::*;
use amr_mesh::Coord;
use serde::{Deserialize, Serialize};

/// Configuration of an oracle run (mirrors [`crate::amr::AmrConfig`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OracleConfig {
    /// Level-0 cells per direction.
    pub n_cell: i64,
    /// Finest allowed level.
    pub max_level: usize,
    /// Grid generation parameters.
    pub grid: GridParams,
    /// Steps between regrids.
    pub regrid_int: u64,
    /// Simulated MPI ranks.
    pub nranks: usize,
    /// Box-to-rank assignment.
    pub strategy: DistributionStrategy,
    /// Time-step control.
    pub ctrl: TimestepControl,
    /// Problem definition (center, energy, ambient state).
    pub problem: SedovProblem,
    /// Half-width of the tagged annulus, in level-local cells.
    pub shock_halfwidth_cells: f64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        Self {
            n_cell: 1024,
            max_level: 3,
            grid: GridParams::default(),
            regrid_int: 2,
            nranks: 64,
            strategy: DistributionStrategy::Sfc,
            ctrl: TimestepControl::default(),
            problem: SedovProblem::default(),
            shock_halfwidth_cells: 6.0,
        }
    }
}

/// One level of the oracle hierarchy: grids and ownership, no field data.
pub struct OracleLevel {
    /// Level geometry.
    pub geom: Geometry,
    /// Grids.
    pub ba: BoxArray,
    /// Rank ownership.
    pub dm: DistributionMapping,
    /// Steps taken.
    pub steps: u64,
}

/// The oracle-driven AMR hierarchy.
pub struct OracleSim {
    cfg: OracleConfig,
    levels: Vec<OracleLevel>,
    time: f64,
    step: u64,
    dt_prev: Option<f64>,
}

impl OracleSim {
    /// Builds the initial hierarchy (annuli at the deposit radius).
    pub fn new(cfg: OracleConfig) -> Self {
        cfg.grid.validate();
        let geom0 = Geometry::unit_square(IntVect::splat(cfg.n_cell));
        let ba0 = BoxArray::single(geom0.domain).max_size(cfg.grid.max_grid_size);
        let dm0 = DistributionMapping::new(&ba0, cfg.nranks, cfg.strategy);
        let mut sim = Self {
            levels: vec![OracleLevel {
                geom: geom0,
                ba: ba0,
                dm: dm0,
                steps: 0,
            }],
            time: 0.0,
            step: 0,
            dt_prev: None,
            cfg,
        };
        sim.rebuild_fine_levels();
        sim
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Steps taken.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Finest active level.
    pub fn finest_level(&self) -> usize {
        self.levels.len() - 1
    }

    /// The levels, coarsest first.
    pub fn levels(&self) -> &[OracleLevel] {
        &self.levels
    }

    /// The configuration.
    pub fn config(&self) -> &OracleConfig {
        &self.cfg
    }

    /// Shock radius at the current time (clamped to the deposit radius).
    pub fn shock_radius(&self) -> f64 {
        let dx0 = self.levels[0].geom.dx()[0];
        self.cfg
            .problem
            .shock_radius(self.time)
            .max(self.cfg.problem.deposit_radius(dx0))
    }

    /// Maximum signal speed `u2 + c2` just behind the shock, from the
    /// strong-shock jump conditions; clamped below by the deposit sound
    /// speed at early times and above ambient sound speed.
    fn max_signal_speed(&self) -> f64 {
        let prob = &self.cfg.problem;
        let gamma = prob.gamma;
        let dx0 = self.levels[0].geom.dx()[0];
        let r_dep = prob.deposit_radius(dx0);
        let t_floor = prob.time_at_radius(r_dep);
        let t_eff = self.time.max(t_floor);
        let us = prob.shock_speed(t_eff);
        // u2 = 2 us / (g+1); c2 = us sqrt(2 g (g-1)) / (g+1).
        let signal = us * (2.0 + (2.0 * gamma * (gamma - 1.0)).sqrt()) / (gamma + 1.0);
        let c_ambient = prob.eos().sound_speed(prob.dens_ambient, prob.p_ambient);
        signal.max(c_ambient)
    }

    /// Advances one *coarse* step: CFL dt from the similarity solution at
    /// the level-0 spacing (Castro subcycles, so `amr.max_step` counts
    /// coarse steps), periodic regridding, identical step accounting to
    /// the real solver.
    pub fn step(&mut self) -> StepInfo {
        if self.step > 0 && self.cfg.regrid_int > 0 && self.step.is_multiple_of(self.cfg.regrid_int)
        {
            self.rebuild_fine_levels();
        }
        let dx0 = self.levels[0].geom.dx()[0];
        let dt_cfl = self.cfg.ctrl.cfl * dx0 / self.max_signal_speed();
        let dt = limit_dt(&self.cfg.ctrl, dt_cfl, self.dt_prev);
        self.dt_prev = Some(dt);
        self.time += dt;
        self.step += 1;
        for l in &mut self.levels {
            l.steps += 1;
        }
        StepInfo {
            step: self.step,
            time: self.time,
            dt,
            finest_level: self.finest_level(),
            cells: self.levels.iter().map(|l| l.ba.num_pts()).collect(),
            grids: self.levels.iter().map(|l| l.ba.len()).collect(),
        }
    }

    /// Rebuilds levels `1..=max_level` as annuli around the current shock
    /// radius.
    fn rebuild_fine_levels(&mut self) {
        let r_s = self.shock_radius();
        let base = OracleLevel {
            geom: self.levels[0].geom,
            ba: self.levels[0].ba.clone(),
            dm: DistributionMapping::new(&self.levels[0].ba, self.cfg.nranks, self.cfg.strategy),
            steps: self.levels[0].steps,
        };
        let steps = self.levels[0].steps;
        let mut new_levels = vec![base];
        for lev in 0..self.cfg.max_level {
            let parent_geom = new_levels[lev].geom;
            let dx = parent_geom.dx()[0];
            // Tag annulus half-width in physical units, measured in the
            // *parent* level's cells (tags live on the parent level).
            let w = self.cfg.shock_halfwidth_cells * dx;
            // Level 1 covers the full blast interior (Castro's gradient
            // tagging fires on the post-shock structure too — Fig. 4a
            // shows L1 as a disc); deeper levels hug the shock annulus.
            let r_lo = if lev == 0 { 0.0 } else { (r_s - w).max(0.0) };
            let r_hi = r_s + w;
            let ba = annulus_fine_grids(
                &parent_geom,
                self.cfg.problem.center,
                r_lo,
                r_hi,
                &self.cfg.grid,
            );
            if ba.is_empty() {
                break;
            }
            // Nesting: clip against the parent's grids (level 0 covers
            // the whole domain, so start at lev >= 1).
            let ba = if lev == 0 {
                ba
            } else {
                let ratio = IntVect::splat(self.cfg.grid.ref_ratio);
                let parent_fine: Vec<IndexBox> =
                    new_levels[lev].ba.iter().map(|b| b.refine(ratio)).collect();
                let mut clipped = Vec::new();
                for b in ba.iter() {
                    for pb in &parent_fine {
                        if let Some(i) = b.intersection(pb) {
                            clipped.push(i);
                        }
                    }
                }
                BoxArray::new(clipped)
            };
            if ba.is_empty() {
                break;
            }
            let geom = parent_geom.refine(IntVect::splat(self.cfg.grid.ref_ratio));
            let dm = DistributionMapping::new(&ba, self.cfg.nranks, self.cfg.strategy);
            new_levels.push(OracleLevel {
                geom,
                ba,
                dm,
                steps,
            });
        }
        self.levels = new_levels;
    }
}

/// Generates the next-finer level's grids covering the annulus
/// `r_lo <= r <= r_hi` (physical units) of the parent level `geom`.
///
/// Coverage is produced directly at blocking-factor granularity as merged
/// row runs, then chopped to `max_grid_size` and refined — the same
/// alignment guarantees as [`make_fine_grids`], without a tag bitmap (the
/// finest paper-scale levels would need multi-hundred-megabyte bitmaps).
pub fn annulus_fine_grids(
    geom: &Geometry,
    center: [f64; 2],
    r_lo: f64,
    r_hi: f64,
    params: &GridParams,
) -> BoxArray {
    params.validate();
    assert!(r_hi >= r_lo && r_lo >= 0.0, "annulus_fine_grids: bad radii");
    let g = params.coarse_granularity();
    let gdomain = geom.domain.coarsen(IntVect::splat(g));
    let dx = geom.dx();
    // Granule size in physical units.
    let gx = dx[0] * g as f64;
    let gy = dx[1] * g as f64;
    // Center in granule coordinates.
    let cx = (center[0] - geom.prob_lo[0]) / gx;
    let cy = (center[1] - geom.prob_lo[1]) / gy;
    let r_lo_g = r_lo / gx;
    let r_hi_g = r_hi / gx;

    // Row runs: for each granule row, up to two x-intervals intersecting
    // the annulus (conservatively including partially covered granules).
    let mut runs: Vec<(Coord, Coord, Coord)> = Vec::new(); // (y, x0, x1)
    let y_min = ((cy - r_hi_g).floor() as Coord).max(gdomain.lo().y);
    let y_max = ((cy + r_hi_g).ceil() as Coord).min(gdomain.hi().y);
    for y in y_min..=y_max {
        // Nearest and farthest distance of the row band [y, y+1) to cy.
        let dy_near = if (y as f64) <= cy && cy < (y + 1) as f64 {
            0.0
        } else {
            (cy - y as f64).abs().min((cy - (y + 1) as f64).abs())
        };
        let dy_far = (cy - y as f64).abs().max((cy - (y + 1) as f64).abs());
        if dy_near > r_hi_g {
            continue;
        }
        let xs_out = (r_hi_g * r_hi_g - dy_near * dy_near).max(0.0).sqrt();
        let xs_in_sq = r_lo_g * r_lo_g - dy_far * dy_far;
        let push = |runs: &mut Vec<(Coord, Coord, Coord)>, x0f: f64, x1f: f64| {
            let x0 = (x0f.floor() as Coord).max(gdomain.lo().x);
            let x1 = (x1f.ceil() as Coord - 1).min(gdomain.hi().x);
            if x0 <= x1 {
                runs.push((y, x0, x1));
            }
        };
        if xs_in_sq > 0.0 {
            let xs_in = xs_in_sq.sqrt();
            push(&mut runs, cx - xs_out, cx - xs_in + 1.0);
            push(&mut runs, cx + xs_in - 1.0, cx + xs_out);
        } else {
            push(&mut runs, cx - xs_out, cx + xs_out);
        }
    }

    // Merge vertically-adjacent identical runs into rectangles.
    runs.sort_unstable_by_key(|&(y, x0, _)| (x0, y));
    let mut merged: Vec<IndexBox> = Vec::new();
    let mut open: Vec<(Coord, Coord, Coord, Coord)> = Vec::new(); // x0,x1,y0,y1
    for &(y, x0, x1) in &runs {
        if let Some(slot) = open
            .iter_mut()
            .find(|s| s.0 == x0 && s.1 == x1 && s.3 + 1 == y)
        {
            slot.3 = y;
        } else {
            open.push((x0, x1, y, y));
        }
    }
    for (x0, x1, y0, y1) in open {
        merged.push(IndexBox::new(IntVect::new(x0, y0), IntVect::new(x1, y1)));
    }

    if merged.is_empty() {
        return BoxArray::empty();
    }
    // Deduplicate overlaps (two runs of the same row can touch when the
    // inner radius vanishes mid-row): keep disjoint by construction of the
    // push() ranges; overlapping x-ranges on one row only occur when
    // xs_in < 1 granule — merge them.
    let ba = BoxArray::new(merged);
    let max_granular = params.max_grid_size / params.blocking_factor;
    let ba = ba.max_size(max_granular);
    let to_fine = IntVect::splat(params.blocking_factor);
    let fine_domain = geom.domain.refine(IntVect::splat(params.ref_ratio));
    let fine: Vec<IndexBox> = ba
        .iter()
        .map(|b| b.refine(to_fine))
        .filter_map(|b| b.intersection(&fine_domain))
        .collect();
    BoxArray::new(fine)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: i64, max_level: usize) -> OracleConfig {
        OracleConfig {
            n_cell: n,
            max_level,
            grid: GridParams {
                ref_ratio: 2,
                blocking_factor: 8,
                max_grid_size: 64,
                n_error_buf: 1,
                grid_eff: 0.7,
            },
            regrid_int: 2,
            nranks: 8,
            strategy: DistributionStrategy::Sfc,
            ctrl: TimestepControl::default(),
            problem: SedovProblem::default(),
            shock_halfwidth_cells: 4.0,
        }
    }

    #[test]
    fn annulus_grids_cover_the_ring() {
        let geom = Geometry::unit_square(IntVect::splat(128));
        let params = GridParams {
            ref_ratio: 2,
            blocking_factor: 8,
            max_grid_size: 64,
            n_error_buf: 1,
            grid_eff: 0.7,
        };
        let ba = annulus_fine_grids(&geom, [0.5, 0.5], 0.2, 0.3, &params);
        assert!(!ba.is_empty());
        // Every fine cell whose center lies in the ring must be covered.
        let fine_geom = geom.refine(IntVect::splat(2));
        for p in fine_geom.domain.cells() {
            let c = fine_geom.cell_center(p);
            let r = ((c[0] - 0.5f64).powi(2) + (c[1] - 0.5f64).powi(2)).sqrt();
            if (0.2..=0.3).contains(&r) {
                assert!(ba.contains_cell(p), "ring cell {p} (r={r}) uncovered");
            }
        }
        // Boxes are disjoint, aligned, and bounded.
        assert!(ba.is_disjoint());
        for b in ba.iter() {
            assert!(b.longest_side() <= params.max_grid_size);
            assert!(b.is_aligned(IntVect::splat(params.blocking_factor)));
        }
    }

    #[test]
    fn annulus_area_is_efficiently_covered() {
        let geom = Geometry::unit_square(IntVect::splat(256));
        let params = GridParams::default();
        let ba = annulus_fine_grids(&geom, [0.5, 0.5], 0.25, 0.30, &params);
        let covered = ba.num_pts() as f64 / 4.0; // fine cells -> coarse cells
        let ring_area = std::f64::consts::PI * (0.30f64.powi(2) - 0.25f64.powi(2));
        let ring_cells = ring_area * 256.0 * 256.0;
        // Coverage within a factor accounting for granularity padding.
        assert!(
            covered >= ring_cells,
            "covered {covered} < ring {ring_cells}"
        );
        assert!(covered < 4.0 * ring_cells, "covered {covered} too loose");
    }

    #[test]
    fn disc_when_inner_radius_zero() {
        let geom = Geometry::unit_square(IntVect::splat(64));
        let ba = annulus_fine_grids(&geom, [0.5, 0.5], 0.0, 0.2, &GridParams::default());
        // Center cell covered.
        let fine_center = IntVect::splat(64);
        assert!(ba.contains_cell(fine_center));
    }

    #[test]
    fn oracle_initializes_with_refined_levels() {
        let sim = OracleSim::new(cfg(128, 2));
        assert_eq!(sim.finest_level(), 2);
        assert!(sim.levels()[1].ba.num_pts() > 0);
    }

    #[test]
    fn refined_cells_grow_with_the_shock() {
        let mut sim = OracleSim::new(cfg(128, 2));
        let early: i64 = sim.levels()[1..].iter().map(|l| l.ba.num_pts()).sum();
        // Steps are cheap (no PDE solve): run until the shock has clearly
        // outgrown the initial deposit annulus.
        let mut steps = 0;
        while sim.shock_radius() < 0.25 && steps < 20_000 {
            sim.step();
            steps += 1;
        }
        let late: i64 = sim.levels()[1..].iter().map(|l| l.ba.num_pts()).sum();
        assert!(late > early, "annulus must grow: {early} -> {late}");
        assert!(sim.time() > 0.0);
    }

    #[test]
    fn dt_honours_init_shrink_and_growth_cap() {
        let mut sim = OracleSim::new(cfg(128, 1));
        let s1 = sim.step();
        let s2 = sim.step();
        assert!(s1.dt > 0.0);
        assert!(s2.dt <= s1.dt * sim.config().ctrl.change_max + 1e-18);
    }

    #[test]
    fn higher_cfl_reaches_radius_in_fewer_steps() {
        let run = |cfl: f64| {
            let mut c = cfg(128, 1);
            c.ctrl.cfl = cfl;
            let mut sim = OracleSim::new(c);
            let mut steps = 0;
            while sim.shock_radius() < 0.3 && steps < 10_000 {
                sim.step();
                steps += 1;
            }
            steps
        };
        assert!(run(0.6) < run(0.3));
    }

    #[test]
    fn nesting_holds() {
        let mut sim = OracleSim::new(cfg(128, 3));
        for _ in 0..30 {
            sim.step();
        }
        for lev in 1..=sim.finest_level() {
            let ratio = IntVect::splat(2);
            let parent: Vec<IndexBox> = sim.levels()[lev - 1]
                .ba
                .iter()
                .map(|b| b.refine(ratio))
                .collect();
            for b in sim.levels()[lev].ba.iter() {
                let covered: i64 = parent
                    .iter()
                    .filter_map(|p| b.intersection(p))
                    .map(|i| i.num_pts())
                    .sum();
                assert_eq!(covered, b.num_pts(), "level {lev} box {b} not nested");
            }
        }
    }

    #[test]
    fn large_mesh_is_fast_enough_to_construct() {
        // 4096^2 L0 with 3 refined levels must build grids without bitmaps.
        let mut c = cfg(4096, 3);
        c.nranks = 256;
        let sim = OracleSim::new(c);
        assert!(sim.levels()[0].ba.num_pts() == 4096 * 4096);
        assert!(sim.finest_level() >= 1);
    }
}
