//! HLLC approximate Riemann solver.
//!
//! The flux scheme Castro-class codes use for compressible hydro: a
//! three-wave (left, contact, right) approximation that resolves shocks
//! and contact discontinuities — essential for the Sedov blast, whose
//! refined-region geometry (and therefore the I/O workload) is set by the
//! shock front.

use crate::eos::GammaLaw;
use crate::state::{flux, Conserved, Primitive};

/// HLLC flux across an interface with left state `wl`, right state `wr`,
/// along direction `dir` (0 = x, 1 = y).
pub fn hllc_flux(wl: &Primitive, wr: &Primitive, eos: &GammaLaw, dir: usize) -> Conserved {
    let cl = wl.sound_speed(eos);
    let cr = wr.sound_speed(eos);
    let ul = wl.vel(dir);
    let ur = wr.vel(dir);

    // Davis wave-speed estimates.
    let s_l = (ul - cl).min(ur - cr);
    let s_r = (ul + cl).max(ur + cr);

    if s_l >= 0.0 {
        return flux(wl, eos, dir);
    }
    if s_r <= 0.0 {
        return flux(wr, eos, dir);
    }

    // Contact (star) speed.
    let denom = wl.rho * (s_l - ul) - wr.rho * (s_r - ur);
    let s_star = if denom.abs() < 1e-300 {
        0.5 * (ul + ur)
    } else {
        (wr.p - wl.p + wl.rho * ul * (s_l - ul) - wr.rho * ur * (s_r - ur)) / denom
    };

    let (w, s, u_n) = if s_star >= 0.0 {
        (wl, s_l, ul)
    } else {
        (wr, s_r, ur)
    };
    let cons = w.to_conserved(eos);
    let f = flux(w, eos, dir);

    // Star-region conserved state (Toro's HLLC construction).
    let factor = w.rho * (s - u_n) / (s - s_star);
    let mut u_star = Conserved {
        rho: factor,
        mx: factor * if dir == 0 { s_star } else { w.u },
        my: factor * if dir == 1 { s_star } else { w.v },
        e: factor * (cons.e / w.rho + (s_star - u_n) * (s_star + w.p / (w.rho * (s - u_n)))),
    };
    if dir == 0 {
        u_star.mx = factor * s_star;
    } else {
        u_star.my = factor * s_star;
    }

    Conserved {
        rho: f.rho + s * (u_star.rho - cons.rho),
        mx: f.mx + s * (u_star.mx - cons.mx),
        my: f.my + s * (u_star.my - cons.my),
        e: f.e + s * (u_star.e - cons.e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eos() -> GammaLaw {
        GammaLaw::default()
    }

    #[test]
    fn symmetric_states_give_zero_mass_flux() {
        let w = Primitive::new(1.0, 0.0, 0.0, 1.0);
        let f = hllc_flux(&w, &w, &eos(), 0);
        assert!(f.rho.abs() < 1e-14);
        assert!((f.mx - 1.0).abs() < 1e-12); // pressure term
        assert!(f.e.abs() < 1e-14);
    }

    #[test]
    fn consistency_with_exact_flux_for_uniform_flow() {
        // Supersonic uniform flow: HLLC must return the upwind flux.
        let w = Primitive::new(1.0, 10.0, 0.5, 1.0);
        let f = hllc_flux(&w, &w, &eos(), 0);
        let exact = flux(&w, &eos(), 0);
        assert!((f.rho - exact.rho).abs() < 1e-12);
        assert!((f.mx - exact.mx).abs() < 1e-12);
        assert!((f.my - exact.my).abs() < 1e-12);
        assert!((f.e - exact.e).abs() < 1e-12);
    }

    #[test]
    fn upwinding_for_supersonic_right_moving_flow() {
        let wl = Primitive::new(2.0, 10.0, 0.0, 1.0);
        let wr = Primitive::new(1.0, 10.0, 0.0, 0.5);
        let f = hllc_flux(&wl, &wr, &eos(), 0);
        let fl = flux(&wl, &eos(), 0);
        assert!((f.rho - fl.rho).abs() < 1e-12);
    }

    #[test]
    fn sod_flux_moves_mass_rightward() {
        // Classic Sod setup: high pressure left, low right.
        let wl = Primitive::new(1.0, 0.0, 0.0, 1.0);
        let wr = Primitive::new(0.125, 0.0, 0.0, 0.1);
        let f = hllc_flux(&wl, &wr, &eos(), 0);
        assert!(f.rho > 0.0, "mass must flow into the low-pressure side");
        assert!(f.e > 0.0);
    }

    #[test]
    fn direction_1_mirrors_direction_0() {
        let wl = Primitive::new(1.0, 0.0, 0.3, 1.0);
        let wr = Primitive::new(0.5, 0.0, -0.1, 0.4);
        let fy = hllc_flux(&wl, &wr, &eos(), 1);
        // Swap axes and solve along x.
        let wl_x = Primitive::new(1.0, 0.3, 0.0, 1.0);
        let wr_x = Primitive::new(0.5, -0.1, 0.0, 0.4);
        let fx = hllc_flux(&wl_x, &wr_x, &eos(), 0);
        assert!((fy.rho - fx.rho).abs() < 1e-12);
        assert!((fy.my - fx.mx).abs() < 1e-12);
        assert!((fy.e - fx.e).abs() < 1e-12);
    }

    #[test]
    fn transverse_momentum_is_advected() {
        // Uniform rightward flow carrying transverse momentum.
        let w = Primitive::new(1.0, 2.0, 3.0, 1.0);
        let f = hllc_flux(&w, &w, &eos(), 0);
        // my flux = rho*v*u = 6.
        assert!((f.my - 6.0).abs() < 1e-11);
    }
}
