//! The AMR simulation driver.
//!
//! Plays the role of `Amr`/`AmrLevel` in AMReX-Castro: owns the level
//! hierarchy, advances it with a global (non-subcycled) CFL time step,
//! averages fine data onto coarse levels, and regrids every
//! `amr.regrid_int` steps by re-tagging and re-running Berger–Rigoutsos.
//! The per-step grid hierarchy this driver produces is the paper's I/O
//! signal: plotfile bytes are a direct function of it.

use crate::eos::GammaLaw;
use crate::sedov::SedovProblem;
use crate::solver::{advance_level, apply_outflow_bc, NGROW};
use crate::state::NCOMP;
use crate::tagging::{tag_gradients, TagCriteria};
use crate::timestep::{cfl_dt, limit_dt, TimestepControl};
use amr_mesh::prelude::*;
use amr_mesh::Coord;
use serde::{Deserialize, Serialize};

/// Full configuration of an AMR Sedov run (the Castro input-file surface
/// the paper varies, Table I, plus grid-generation knobs from Listing 2).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AmrConfig {
    /// Level-0 cells per direction (`amr.n_cell`).
    pub n_cell: i64,
    /// Finest level allowed (`amr.max_level`); total levels = max_level+1.
    pub max_level: usize,
    /// Grid generation parameters (`amr.ref_ratio`, `amr.blocking_factor`,
    /// `amr.max_grid_size`, `amr.n_error_buf`, `amr.grid_eff`).
    pub grid: GridParams,
    /// Steps between regrids (`amr.regrid_int`).
    pub regrid_int: u64,
    /// Simulated MPI ranks.
    pub nranks: usize,
    /// Box-to-rank assignment strategy.
    pub strategy: DistributionStrategy,
    /// Time-step control (`castro.cfl`, `castro.init_shrink`,
    /// `castro.change_max`).
    pub ctrl: TimestepControl,
    /// Refinement criteria.
    pub tag: TagCriteria,
    /// Problem definition.
    pub problem: SedovProblem,
}

impl Default for AmrConfig {
    /// Listing 2 of the paper scaled to a small default mesh.
    fn default() -> Self {
        Self {
            n_cell: 64,
            max_level: 2,
            grid: GridParams {
                ref_ratio: 2,
                blocking_factor: 8,
                max_grid_size: 32,
                n_error_buf: 2,
                grid_eff: 0.7,
            },
            regrid_int: 2,
            nranks: 4,
            strategy: DistributionStrategy::Sfc,
            ctrl: TimestepControl::default(),
            tag: TagCriteria::default(),
            problem: SedovProblem::default(),
        }
    }
}

/// One refinement level.
pub struct Level {
    /// Level geometry.
    pub geom: Geometry,
    /// Conserved state.
    pub mf: MultiFab,
    /// Steps taken at this level (== global steps; non-subcycled).
    pub steps: u64,
}

/// Per-step summary returned by [`AmrSim::step`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StepInfo {
    /// Step index after the advance (1-based).
    pub step: u64,
    /// Simulation time after the advance.
    pub time: f64,
    /// dt used.
    pub dt: f64,
    /// Finest active level.
    pub finest_level: usize,
    /// Valid cells per level.
    pub cells: Vec<i64>,
    /// Grids per level.
    pub grids: Vec<usize>,
}

/// The AMR hierarchy driver.
pub struct AmrSim {
    cfg: AmrConfig,
    eos: GammaLaw,
    levels: Vec<Level>,
    time: f64,
    step: u64,
    dt_prev: Option<f64>,
}

impl AmrSim {
    /// Builds the hierarchy at `t = 0`: level 0 covering the unit square,
    /// then up to `max_level` finer levels from iterative initial tagging,
    /// each initialized analytically (the AMReX init-regrid cycle).
    pub fn new(cfg: AmrConfig) -> Self {
        cfg.grid.validate();
        assert!(cfg.n_cell >= cfg.grid.blocking_factor, "n_cell too small");
        let eos = cfg.problem.eos();
        let geom0 = Geometry::unit_square(IntVect::splat(cfg.n_cell));
        let ba0 = BoxArray::single(geom0.domain).max_size(cfg.grid.max_grid_size);
        let dm0 = DistributionMapping::new(&ba0, cfg.nranks, cfg.strategy);
        let mut mf0 = MultiFab::new(ba0, dm0, NCOMP, NGROW);
        cfg.problem.init_level(&mut mf0, &geom0);
        let mut sim = Self {
            eos,
            levels: vec![Level {
                geom: geom0,
                mf: mf0,
                steps: 0,
            }],
            time: 0.0,
            step: 0,
            dt_prev: None,
            cfg,
        };
        // Iterative initial grid generation.
        for _ in 0..sim.cfg.max_level {
            let lev = sim.levels.len() - 1;
            if lev >= sim.cfg.max_level {
                break;
            }
            sim.fill_ghosts(lev);
            let tags = tag_gradients(&sim.levels[lev].mf, &sim.eos, &sim.cfg.tag);
            let fine_ba = make_fine_grids(&tags, sim.levels[lev].geom.domain, &sim.cfg.grid);
            if fine_ba.is_empty() {
                break;
            }
            let fine_geom = sim.levels[lev]
                .geom
                .refine(IntVect::splat(sim.cfg.grid.ref_ratio));
            let dm = DistributionMapping::new(&fine_ba, sim.cfg.nranks, sim.cfg.strategy);
            let mut mf = MultiFab::new(fine_ba, dm, NCOMP, NGROW);
            sim.cfg.problem.init_level(&mut mf, &fine_geom);
            sim.levels.push(Level {
                geom: fine_geom,
                mf,
                steps: 0,
            });
        }
        sim.average_down_all();
        sim
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Steps taken so far.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Finest active level index.
    pub fn finest_level(&self) -> usize {
        self.levels.len() - 1
    }

    /// Access to the levels (coarsest first).
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// The run configuration.
    pub fn config(&self) -> &AmrConfig {
        &self.cfg
    }

    /// The equation of state in use.
    pub fn eos(&self) -> &GammaLaw {
        &self.eos
    }

    /// Fills ghost cells of level `lev`: coarse-fine interpolation (from
    /// `lev-1`), same-level exchange, then physical outflow boundaries.
    fn fill_ghosts(&mut self, lev: usize) {
        if lev > 0 {
            let (coarse_slice, fine_slice) = self.levels.split_at_mut(lev);
            let coarse = &coarse_slice[lev - 1].mf;
            let fine = &mut fine_slice[0].mf;
            interp_ghosts_from_coarse(
                fine,
                coarse,
                self.cfg.grid.ref_ratio,
                &fine_slice[0].geom.domain,
            );
        }
        let domain = self.levels[lev].geom.domain;
        self.levels[lev].mf.fill_boundary();
        apply_outflow_bc(&mut self.levels[lev].mf, &domain);
    }

    /// Conservatively averages every fine level onto its parent.
    fn average_down_all(&mut self) {
        for lev in (1..self.levels.len()).rev() {
            let (coarse_slice, fine_slice) = self.levels.split_at_mut(lev);
            average_down(
                &fine_slice[0].mf,
                &mut coarse_slice[lev - 1].mf,
                self.cfg.grid.ref_ratio,
            );
        }
    }

    /// Advances the whole hierarchy by one *coarse* (level-0) step with
    /// subcycling: level `l` takes `ref_ratio^l` substeps of `dt0 /
    /// ref_ratio^l`, exactly Castro's default time stepping. `amr.max_step`
    /// therefore counts coarse steps, which is what makes the paper's
    /// 200-output windows traverse a meaningful fraction of the domain.
    /// Regrids first when the coarse step count calls for it.
    pub fn step(&mut self) -> StepInfo {
        if self.step > 0 && self.cfg.regrid_int > 0 && self.step.is_multiple_of(self.cfg.regrid_int)
        {
            self.regrid();
        }
        // Coarse dt: the minimum over levels of each level's stable dt
        // scaled to its coarse equivalent (level l subcycles r^l times).
        let r = self.cfg.grid.ref_ratio as f64;
        let mut dt0 = f64::INFINITY;
        for (lev, l) in self.levels.iter().enumerate() {
            let dt_l = cfl_dt(&l.mf, &l.geom, &self.eos, self.cfg.ctrl.cfl);
            dt0 = dt0.min(dt_l * r.powi(lev as i32));
        }
        let dt0 = limit_dt(&self.cfg.ctrl, dt0, self.dt_prev);
        self.dt_prev = Some(dt0);

        self.advance_recursive(0, dt0);
        self.time += dt0;
        self.step += 1;

        StepInfo {
            step: self.step,
            time: self.time,
            dt: dt0,
            finest_level: self.finest_level(),
            cells: self
                .levels
                .iter()
                .map(|l| l.mf.box_array().num_pts())
                .collect(),
            grids: self.levels.iter().map(|l| l.mf.box_array().len()).collect(),
        }
    }

    /// Advances level `lev` by `dt`, then subcycles the finer level and
    /// averages it down (Castro's recursive `timeStep`).
    fn advance_recursive(&mut self, lev: usize, dt: f64) {
        let geom = self.levels[lev].geom;
        // advance_level refills ghosts per sweep via the closure; take the
        // MultiFab out temporarily to satisfy the borrow checker.
        let mut mf = std::mem::replace(
            &mut self.levels[lev].mf,
            MultiFab::new(
                BoxArray::single(IndexBox::at_origin(IntVect::splat(1))),
                DistributionMapping::from_owners(vec![0], 1),
                NCOMP,
                0,
            ),
        );
        {
            let levels = &mut self.levels;
            let ratio = self.cfg.grid.ref_ratio;
            advance_level(&mut mf, &geom, dt, &self.eos, |m: &mut MultiFab| {
                if lev > 0 {
                    interp_ghosts_from_coarse(m, &levels[lev - 1].mf, ratio, &geom.domain);
                }
                m.fill_boundary();
                apply_outflow_bc(m, &geom.domain);
            });
        }
        self.levels[lev].mf = mf;
        self.levels[lev].steps += 1;

        if lev + 1 < self.levels.len() {
            let r = self.cfg.grid.ref_ratio as usize;
            for _ in 0..r {
                self.advance_recursive(lev + 1, dt / r as f64);
            }
            let (coarse_slice, fine_slice) = self.levels.split_at_mut(lev + 1);
            average_down(
                &fine_slice[0].mf,
                &mut coarse_slice[lev].mf,
                self.cfg.grid.ref_ratio,
            );
        }
    }

    /// Re-tags all levels and rebuilds levels 1..=max_level, enforcing
    /// nesting and preserving data (copy where overlapping, interpolate
    /// from the parent elsewhere).
    pub fn regrid(&mut self) {
        let max_lev = self.cfg.max_level;
        let ratio = IntVect::splat(self.cfg.grid.ref_ratio);

        // Tag every level that may spawn a finer one.
        let top = self.finest_level().min(max_lev.saturating_sub(1));
        let mut tags: Vec<TagMap> = Vec::with_capacity(top + 1);
        for lev in 0..=top {
            self.fill_ghosts(lev);
            tags.push(tag_gradients(
                &self.levels[lev].mf,
                &self.eos,
                &self.cfg.tag,
            ));
        }
        // Nesting: a level must refine wherever its child will refine.
        for lev in (0..top).rev() {
            let finer = tags[lev + 1].clone().coarsen(ratio);
            let mut buffered = finer.clone();
            buffered.buffer(1);
            for p in buffered.domain().cells() {
                if buffered.get(p) {
                    tags[lev].set(p, true);
                }
            }
        }

        // Build new levels coarse-to-fine.
        let mut new_levels: Vec<Level> = Vec::with_capacity(max_lev + 1);
        // Level 0 is immutable.
        new_levels.push(Level {
            geom: self.levels[0].geom,
            mf: self.levels[0].mf.clone(),
            steps: self.levels[0].steps,
        });
        for lev in 0..=top {
            let fine_ba = make_fine_grids(&tags[lev], self.levels[lev].geom.domain, &self.cfg.grid);
            if fine_ba.is_empty() {
                break;
            }
            // Enforce nesting inside the (new) parent's grids for lev >= 1.
            let fine_ba = if lev == 0 {
                fine_ba
            } else {
                let parent_fine: Vec<IndexBox> = new_levels[lev]
                    .mf
                    .box_array()
                    .iter()
                    .map(|b| b.refine(ratio))
                    .collect();
                let mut clipped = Vec::new();
                for b in fine_ba.iter() {
                    for pb in &parent_fine {
                        if let Some(i) = b.intersection(pb) {
                            clipped.push(i);
                        }
                    }
                }
                BoxArray::new(clipped)
            };
            if fine_ba.is_empty() {
                break;
            }
            let fine_geom = new_levels[lev].geom.refine(ratio);
            let dm = DistributionMapping::new(&fine_ba, self.cfg.nranks, self.cfg.strategy);
            let mut mf = MultiFab::new(fine_ba, dm, NCOMP, NGROW);
            // Fill: prolongate from the new parent, then overwrite with
            // old same-level data where it exists.
            prolongate(&mut mf, &new_levels[lev].mf, self.cfg.grid.ref_ratio);
            if lev + 1 < self.levels.len() {
                mf.parallel_copy_from(&self.levels[lev + 1].mf);
            }
            let steps = self
                .levels
                .get(lev + 1)
                .map(|l| l.steps)
                .unwrap_or(new_levels[lev].steps);
            new_levels.push(Level {
                geom: fine_geom,
                mf,
                steps,
            });
        }
        self.levels = new_levels;
        self.average_down_all();
    }
}

/// Piecewise-constant interpolation of coarse data into the ghost region
/// of every fine fab (cells inside `fine_domain` only).
pub fn interp_ghosts_from_coarse(
    fine: &mut MultiFab,
    coarse: &MultiFab,
    ref_ratio: Coord,
    fine_domain: &IndexBox,
) {
    let ratio = IntVect::splat(ref_ratio);
    let ncomp = fine.ncomp().min(coarse.ncomp());
    let ngrow = fine.ngrow();
    for fi in 0..fine.nfabs() {
        let valid = fine.valid_box(fi);
        let grown = match valid.grow(ngrow).intersection(fine_domain) {
            Some(g) => g,
            None => continue,
        };
        // Ghost strips = grown region minus the valid box.
        let strips = BoxArray::single(valid).complement_in(&grown);
        let fab = fine.fab_mut(fi);
        for strip in strips {
            let cstrip = strip.coarsen(ratio);
            for (ci, isect) in coarse.box_array().intersections(&cstrip) {
                let cfab = coarse.fab(ci);
                for cp in isect.cells() {
                    let fine_cells = match IndexBox::new(cp, cp).refine(ratio).intersection(&strip)
                    {
                        Some(r) => r,
                        None => continue,
                    };
                    for comp in 0..ncomp {
                        let v = cfab.get(cp, comp);
                        for fp in fine_cells.cells() {
                            fab.set(fp, comp, v);
                        }
                    }
                }
            }
        }
    }
}

/// Piecewise-constant prolongation of the full valid region of `fine`
/// from `coarse` (used to seed new grids at regrid).
pub fn prolongate(fine: &mut MultiFab, coarse: &MultiFab, ref_ratio: Coord) {
    let ratio = IntVect::splat(ref_ratio);
    let ncomp = fine.ncomp().min(coarse.ncomp());
    for fi in 0..fine.nfabs() {
        let valid = fine.valid_box(fi);
        let cregion = valid.coarsen(ratio);
        let fab = fine.fab_mut(fi);
        for (ci, isect) in coarse.box_array().intersections(&cregion) {
            let cfab = coarse.fab(ci);
            for cp in isect.cells() {
                let fine_cells = match IndexBox::new(cp, cp).refine(ratio).intersection(&valid) {
                    Some(r) => r,
                    None => continue,
                };
                for comp in 0..ncomp {
                    let v = cfab.get(cp, comp);
                    for fp in fine_cells.cells() {
                        fab.set(fp, comp, v);
                    }
                }
            }
        }
    }
}

/// Conservative average of `fine` onto the overlapping region of
/// `coarse`: each covered coarse cell becomes the mean of its fine cells.
pub fn average_down(fine: &MultiFab, coarse: &mut MultiFab, ref_ratio: Coord) {
    let ratio = IntVect::splat(ref_ratio);
    let ncomp = coarse.ncomp().min(fine.ncomp());
    for ci in 0..coarse.nfabs() {
        let cvalid = coarse.valid_box(ci);
        let fine_region = cvalid.refine(ratio);
        for (fi, fisect) in fine.box_array().intersections(&fine_region) {
            let ffab = fine.fab(fi);
            let covered = fisect.coarsen(ratio);
            for cp in covered.cells() {
                let cells = match IndexBox::new(cp, cp).refine(ratio).intersection(&fisect) {
                    Some(r) => r,
                    None => continue,
                };
                let n = cells.num_pts() as f64;
                // Only replace fully covered coarse cells (alignment makes
                // partial coverage rare; skip it to stay conservative).
                if cells.num_pts() != ratio.prod() {
                    continue;
                }
                for comp in 0..ncomp {
                    let mut sum = 0.0;
                    for fp in cells.cells() {
                        sum += ffab.get(fp, comp);
                    }
                    coarse.fab_mut(ci).set(cp, comp, sum / n);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{UEDEN, URHO};

    fn small_cfg() -> AmrConfig {
        AmrConfig {
            n_cell: 64,
            max_level: 2,
            grid: GridParams {
                ref_ratio: 2,
                blocking_factor: 8,
                max_grid_size: 32,
                n_error_buf: 2,
                grid_eff: 0.7,
            },
            regrid_int: 2,
            nranks: 4,
            strategy: DistributionStrategy::Sfc,
            ctrl: TimestepControl::default(),
            tag: TagCriteria::default(),
            problem: SedovProblem::default(),
        }
    }

    #[test]
    fn initial_hierarchy_refines_the_deposit() {
        let sim = AmrSim::new(small_cfg());
        assert!(sim.finest_level() >= 1, "blast region must be refined");
        // Finer levels are much smaller than the domain.
        let l0 = sim.levels()[0].mf.box_array().num_pts();
        let l1 = sim.levels()[1].mf.box_array().num_pts();
        assert!(l1 < 4 * l0, "refined level covers a fraction of the domain");
        assert!(l1 > 0);
    }

    #[test]
    fn nesting_holds_after_regrids() {
        let mut sim = AmrSim::new(small_cfg());
        for _ in 0..6 {
            sim.step();
        }
        for lev in 1..=sim.finest_level() {
            let ratio = IntVect::splat(sim.config().grid.ref_ratio);
            let parent: Vec<IndexBox> = sim.levels()[lev - 1]
                .mf
                .box_array()
                .iter()
                .map(|b| b.refine(ratio))
                .collect();
            for b in sim.levels()[lev].mf.box_array().iter() {
                let covered = parent
                    .iter()
                    .filter_map(|p| b.intersection(p))
                    .map(|i| i.num_pts())
                    .sum::<i64>();
                assert_eq!(covered, b.num_pts(), "level {lev} box {b} not nested");
            }
        }
    }

    #[test]
    fn dt_sequence_respects_init_shrink_and_growth() {
        let mut sim = AmrSim::new(small_cfg());
        let s1 = sim.step();
        let s2 = sim.step();
        let s3 = sim.step();
        assert!(s1.dt > 0.0);
        assert!(s2.dt <= s1.dt * 1.1 + 1e-15);
        assert!(s3.dt <= s2.dt * 1.1 + 1e-15);
        assert!(s2.time > s1.time);
    }

    #[test]
    fn blast_expands_refined_region() {
        // Accelerate the dt ramp-up (Castro's init_shrink=0.01 needs ~50
        // steps before the shock moves a cell) so the test stays fast.
        let mut cfg = small_cfg();
        cfg.ctrl = TimestepControl {
            cfl: 0.5,
            init_shrink: 0.3,
            change_max: 1.3,
        };
        let mut sim = AmrSim::new(cfg);
        let cells_t0: i64 = sim.levels()[1..]
            .iter()
            .map(|l| l.mf.box_array().num_pts())
            .sum();
        for _ in 0..40 {
            sim.step();
        }
        let cells_t1: i64 = sim.levels()[1..]
            .iter()
            .map(|l| l.mf.box_array().num_pts())
            .sum();
        assert!(
            cells_t1 > cells_t0,
            "refined cells must grow as the shock expands: {cells_t0} -> {cells_t1}"
        );
    }

    #[test]
    fn mass_is_approximately_conserved_through_steps_and_regrids() {
        let mut sim = AmrSim::new(small_cfg());
        let m0 = sim.levels()[0].mf.sum(URHO) * sim.levels()[0].geom.cell_area();
        for _ in 0..8 {
            sim.step();
        }
        let m1 = sim.levels()[0].mf.sum(URHO) * sim.levels()[0].geom.cell_area();
        // Subcycling without flux registers (no reflux) leaks a small
        // amount of mass at coarse-fine boundaries; outflow boundaries see
        // nothing before the wave arrives. Drift must stay tiny.
        assert!((m0 - m1).abs() < 5e-3 * m0, "mass {m0} -> {m1}");
    }

    #[test]
    fn max_level_zero_runs_unrefined() {
        let mut cfg = small_cfg();
        cfg.max_level = 0;
        let mut sim = AmrSim::new(cfg);
        assert_eq!(sim.finest_level(), 0);
        sim.step();
        sim.step();
        assert_eq!(sim.finest_level(), 0);
    }

    #[test]
    fn energy_positive_everywhere_after_steps() {
        let mut sim = AmrSim::new(small_cfg());
        for _ in 0..6 {
            sim.step();
        }
        for l in sim.levels() {
            assert!(l.mf.min(UEDEN) > 0.0);
            assert!(l.mf.min(URHO) > 0.0);
        }
    }

    #[test]
    fn average_down_is_mean_of_children() {
        let geomc = Geometry::unit_square(IntVect::splat(8));
        let bac = BoxArray::single(geomc.domain);
        let dmc = DistributionMapping::new(&bac, 1, DistributionStrategy::Sfc);
        let mut coarse = MultiFab::new(bac, dmc, NCOMP, 0);
        let baf = BoxArray::single(IndexBox::at_origin(IntVect::splat(4)));
        let dmf = DistributionMapping::new(&baf, 1, DistributionStrategy::Sfc);
        let mut fine = MultiFab::new(baf, dmf, NCOMP, 0);
        // Fine values: 1, 2, 3, 4 in each 2x2 block -> coarse = 2.5.
        for p in IndexBox::at_origin(IntVect::splat(4)).cells() {
            let v = 1.0 + (p.x % 2) as f64 + 2.0 * (p.y % 2) as f64;
            fine.fab_mut(0).set(p, URHO, v);
        }
        average_down(&fine, &mut coarse, 2);
        for p in IndexBox::at_origin(IntVect::splat(2)).cells() {
            assert_eq!(coarse.fab(0).get(p, URHO), 2.5);
        }
        // Uncovered coarse cells untouched.
        assert_eq!(coarse.fab(0).get(IntVect::new(5, 5), URHO), 0.0);
    }

    #[test]
    fn prolongate_copies_parent_values() {
        let bac = BoxArray::single(IndexBox::at_origin(IntVect::splat(4)));
        let dmc = DistributionMapping::new(&bac, 1, DistributionStrategy::Sfc);
        let mut coarse = MultiFab::new(bac, dmc, 1, 0);
        coarse.fab_mut(0).set(IntVect::new(1, 1), 0, 7.0);
        let baf = BoxArray::single(IndexBox::from_lo_size(
            IntVect::new(2, 2),
            IntVect::splat(2),
        ));
        let dmf = DistributionMapping::new(&baf, 1, DistributionStrategy::Sfc);
        let mut fine = MultiFab::new(baf, dmf, 1, 0);
        prolongate(&mut fine, &coarse, 2);
        let region = IndexBox::from_lo_size(IntVect::new(2, 2), IntVect::splat(2));
        for p in region.cells() {
            assert_eq!(fine.fab(0).get(p, 0), 7.0);
        }
    }
}
