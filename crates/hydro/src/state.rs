//! Conserved and primitive state of the 2-D Euler equations.

use crate::eos::GammaLaw;

/// Number of conserved components.
pub const NCOMP: usize = 4;
/// Density component index.
pub const URHO: usize = 0;
/// x-momentum component index.
pub const UMX: usize = 1;
/// y-momentum component index.
pub const UMY: usize = 2;
/// Total energy density component index.
pub const UEDEN: usize = 3;

/// Conserved state at one cell: `(rho, rho u, rho v, rho E)`.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Conserved {
    /// Mass density.
    pub rho: f64,
    /// x momentum density.
    pub mx: f64,
    /// y momentum density.
    pub my: f64,
    /// Total energy density (internal + kinetic).
    pub e: f64,
}

/// Primitive state at one cell: `(rho, u, v, p)`.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Primitive {
    /// Mass density.
    pub rho: f64,
    /// x velocity.
    pub u: f64,
    /// y velocity.
    pub v: f64,
    /// Pressure.
    pub p: f64,
}

/// Density floor applied during conversions; the Sedov ambient state is
/// far above this, so the floor only guards against transient negativity.
pub const SMALL_DENS: f64 = 1e-12;
/// Pressure floor.
pub const SMALL_PRES: f64 = 1e-14;

impl Conserved {
    /// Creates a conserved state from components.
    pub fn new(rho: f64, mx: f64, my: f64, e: f64) -> Self {
        Self { rho, mx, my, e }
    }

    /// Converts to primitives under `eos`, applying floors.
    pub fn to_primitive(&self, eos: &GammaLaw) -> Primitive {
        let rho = self.rho.max(SMALL_DENS);
        let u = self.mx / rho;
        let v = self.my / rho;
        let kin = 0.5 * rho * (u * u + v * v);
        let e_int = ((self.e - kin) / rho).max(SMALL_PRES);
        Primitive {
            rho,
            u,
            v,
            p: eos.pressure(rho, e_int).max(SMALL_PRES),
        }
    }
}

impl Primitive {
    /// Creates a primitive state from components.
    pub fn new(rho: f64, u: f64, v: f64, p: f64) -> Self {
        Self { rho, u, v, p }
    }

    /// Converts to conserved form under `eos`.
    pub fn to_conserved(&self, eos: &GammaLaw) -> Conserved {
        let e_int = eos.internal_energy(self.rho, self.p);
        Conserved {
            rho: self.rho,
            mx: self.rho * self.u,
            my: self.rho * self.v,
            e: self.rho * e_int + 0.5 * self.rho * (self.u * self.u + self.v * self.v),
        }
    }

    /// Sound speed under `eos`.
    pub fn sound_speed(&self, eos: &GammaLaw) -> f64 {
        eos.sound_speed(self.rho, self.p)
    }

    /// Velocity component along direction `dir` (0 = x, 1 = y).
    #[inline]
    pub fn vel(&self, dir: usize) -> f64 {
        if dir == 0 {
            self.u
        } else {
            self.v
        }
    }

    /// Flow Mach number.
    pub fn mach(&self, eos: &GammaLaw) -> f64 {
        (self.u * self.u + self.v * self.v).sqrt() / self.sound_speed(eos)
    }
}

/// Physical flux of the conserved state along `dir` given primitives.
pub fn flux(w: &Primitive, eos: &GammaLaw, dir: usize) -> Conserved {
    let un = w.vel(dir);
    let cons = w.to_conserved(eos);
    let mut f = Conserved {
        rho: cons.rho * un,
        mx: cons.mx * un,
        my: cons.my * un,
        e: (cons.e + w.p) * un,
    };
    if dir == 0 {
        f.mx += w.p;
    } else {
        f.my += w.p;
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_conversion() {
        let eos = GammaLaw::default();
        let w = Primitive::new(1.2, 0.3, -0.4, 2.5);
        let u = w.to_conserved(&eos);
        let w2 = u.to_primitive(&eos);
        assert!((w.rho - w2.rho).abs() < 1e-13);
        assert!((w.u - w2.u).abs() < 1e-13);
        assert!((w.v - w2.v).abs() < 1e-13);
        assert!((w.p - w2.p).abs() < 1e-13);
    }

    #[test]
    fn floors_guard_negative_energy() {
        let eos = GammaLaw::default();
        let u = Conserved::new(1.0, 10.0, 0.0, 1.0); // kinetic > total
        let w = u.to_primitive(&eos);
        assert!(w.p > 0.0);
        assert!(w.rho > 0.0);
    }

    #[test]
    fn static_state_flux_is_pressure_only() {
        let eos = GammaLaw::default();
        let w = Primitive::new(1.0, 0.0, 0.0, 3.0);
        let fx = flux(&w, &eos, 0);
        assert_eq!(fx.rho, 0.0);
        assert_eq!(fx.mx, 3.0);
        assert_eq!(fx.my, 0.0);
        assert_eq!(fx.e, 0.0);
        let fy = flux(&w, &eos, 1);
        assert_eq!(fy.my, 3.0);
        assert_eq!(fy.mx, 0.0);
    }

    #[test]
    fn advective_flux_carries_mass() {
        let eos = GammaLaw::default();
        let w = Primitive::new(2.0, 3.0, 0.0, 1.0);
        let fx = flux(&w, &eos, 0);
        assert!((fx.rho - 6.0).abs() < 1e-14);
    }

    #[test]
    fn mach_number() {
        let eos = GammaLaw::default();
        let w = Primitive::new(1.0, eos.sound_speed(1.0, 1.0), 0.0, 1.0);
        assert!((w.mach(&eos) - 1.0).abs() < 1e-13);
    }
}
