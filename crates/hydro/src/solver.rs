//! Dimensionally split MUSCL–HLLC level solver.
//!
//! Second-order Godunov scheme in the Castro family: limited linear
//! reconstruction of primitives, HLLC fluxes, conservative update, one
//! sweep per direction with a ghost refill in between. Each grid patch is
//! updated independently (rayon across fabs), relying on 2 ghost cells.

use crate::eos::GammaLaw;
use crate::riemann::hllc_flux;
use crate::state::{flux, Conserved, Primitive, NCOMP, UEDEN, UMX, UMY, URHO};
use amr_mesh::{FArrayBox, Geometry, IndexBox, IntVect, MultiFab};
use rayon::prelude::*;

/// Ghost-cell width the solver requires.
pub const NGROW: i64 = 2;

/// Monotonized-central slope limiter (the default in Castro's PLM).
#[inline]
fn mc_limit(dm: f64, dp: f64) -> f64 {
    if dm * dp <= 0.0 {
        0.0
    } else {
        let dc = 0.5 * (dm + dp);
        let lim = 2.0 * dm.abs().min(dp.abs());
        dc.signum() * dc.abs().min(lim)
    }
}

#[inline]
fn prim_at(fab: &FArrayBox, p: IntVect, eos: &GammaLaw) -> Primitive {
    Conserved::new(
        fab.get(p, URHO),
        fab.get(p, UMX),
        fab.get(p, UMY),
        fab.get(p, UEDEN),
    )
    .to_primitive(eos)
}

#[inline]
fn limited_slope(wm: &Primitive, w0: &Primitive, wp: &Primitive) -> Primitive {
    Primitive {
        rho: mc_limit(w0.rho - wm.rho, wp.rho - w0.rho),
        u: mc_limit(w0.u - wm.u, wp.u - w0.u),
        v: mc_limit(w0.v - wm.v, wp.v - w0.v),
        p: mc_limit(w0.p - wm.p, wp.p - w0.p),
    }
}

#[inline]
fn half(w: &Primitive, d: &Primitive, sign: f64) -> Primitive {
    Primitive {
        rho: (w.rho + sign * 0.5 * d.rho).max(crate::state::SMALL_DENS),
        u: w.u + sign * 0.5 * d.u,
        v: w.v + sign * 0.5 * d.v,
        p: (w.p + sign * 0.5 * d.p).max(crate::state::SMALL_PRES),
    }
}

/// One directional MUSCL–Hancock sweep over the valid region of a fab.
///
/// `fab` holds conserved components over a domain grown by [`NGROW`]; its
/// ghost cells must be filled before the call. Only `valid` cells are
/// updated. The Hancock half-time predictor evolves both reconstructed
/// face states of each cell by `dt/2` before the Riemann solve — without
/// it the scheme develops post-shock oscillations at high resolution.
pub fn sweep_fab(
    fab: &mut FArrayBox,
    valid: &IndexBox,
    dir: usize,
    dt_over_dx: f64,
    eos: &GammaLaw,
) {
    let unit = if dir == 0 {
        IntVect::new(1, 0)
    } else {
        IntVect::new(0, 1)
    };

    // Predicted low/high face states for every cell whose faces border a
    // valid cell: the valid box grown by one in the sweep direction.
    let ext = valid.grow_vect(unit);
    let npts = ext.num_pts() as usize;
    let mut w_lo: Vec<Primitive> = Vec::with_capacity(npts);
    let mut w_hi: Vec<Primitive> = Vec::with_capacity(npts);
    for c in ext.cells() {
        let wm = prim_at(fab, c - unit, eos);
        let w0 = prim_at(fab, c, eos);
        let wp = prim_at(fab, c + unit, eos);
        let d = limited_slope(&wm, &w0, &wp);
        let face_lo = half(&w0, &d, -1.0);
        let face_hi = half(&w0, &d, 1.0);
        // Hancock predictor: advance both face states by dt/2 with the
        // local flux difference.
        let f_lo = flux(&face_lo, eos, dir);
        let f_hi = flux(&face_hi, eos, dir);
        let coef = 0.5 * dt_over_dx;
        let evolve = |w: &Primitive| -> Primitive {
            let u = w.to_conserved(eos);
            Conserved {
                rho: u.rho + coef * (f_lo.rho - f_hi.rho),
                mx: u.mx + coef * (f_lo.mx - f_hi.mx),
                my: u.my + coef * (f_lo.my - f_hi.my),
                e: u.e + coef * (f_lo.e - f_hi.e),
            }
            .to_primitive(eos)
        };
        w_lo.push(evolve(&face_lo));
        w_hi.push(evolve(&face_hi));
    }

    // Flux at the low face of each valid cell plus one extra face at the
    // high end: faces indexed by the cell on their high side.
    let face_lo_corner = valid.lo();
    let mut sz = valid.size();
    sz.set(dir, sz.get(dir) + 1);
    let face_box = IndexBox::from_lo_size(face_lo_corner, sz);

    let mut fluxes: Vec<Conserved> = Vec::with_capacity(face_box.num_pts() as usize);
    for f in face_box.cells() {
        // Face between cells f-unit (left) and f (right).
        let left = w_hi[ext.offset(f - unit)];
        let right = w_lo[ext.offset(f)];
        fluxes.push(hllc_flux(&left, &right, eos, dir));
    }

    for c in valid.cells() {
        let f_lo = fluxes[face_box.offset(c)];
        let f_hi = fluxes[face_box.offset(c + unit)];
        let upd = |lo: f64, hi: f64| -dt_over_dx * (hi - lo);
        fab.add(c, URHO, upd(f_lo.rho, f_hi.rho));
        fab.add(c, UMX, upd(f_lo.mx, f_hi.mx));
        fab.add(c, UMY, upd(f_lo.my, f_hi.my));
        fab.add(c, UEDEN, upd(f_lo.e, f_hi.e));
    }
}

/// Advances one level by `dt` with Strang-ordered directional sweeps.
///
/// `fill_ghosts` must refill ghost cells (same-level exchange, coarse-fine
/// interpolation, physical boundaries); it is invoked before each sweep.
pub fn advance_level<F>(
    mf: &mut MultiFab,
    geom: &Geometry,
    dt: f64,
    eos: &GammaLaw,
    mut fill_ghosts: F,
) where
    F: FnMut(&mut MultiFab),
{
    assert_eq!(mf.ncomp(), NCOMP, "advance_level: wrong component count");
    assert!(mf.ngrow() >= NGROW, "advance_level: need {NGROW} ghosts");
    let dx = geom.dx();
    #[allow(clippy::needless_range_loop)] // `dir` is a spatial dimension, not an index
    for dir in 0..2 {
        fill_ghosts(mf);
        let boxes: Vec<IndexBox> = mf.box_array().iter().copied().collect();
        let dt_over_dx = dt / dx[dir];
        mf.fabs_mut()
            .par_iter_mut()
            .zip(boxes.par_iter())
            .for_each(|(fab, valid)| {
                sweep_fab(fab, valid, dir, dt_over_dx, eos);
                enforce_floors(fab, valid);
            });
    }
}

/// Applies Castro-style density/energy floors over `valid`: transient
/// undershoots at coarse-fine boundaries (the subcycled scheme has no
/// reflux) are clipped instead of propagating NaNs.
fn enforce_floors(fab: &mut FArrayBox, valid: &IndexBox) {
    use crate::state::{SMALL_DENS, SMALL_PRES};
    for p in valid.cells() {
        let rho = fab.get(p, URHO);
        if rho < SMALL_DENS {
            fab.set(p, URHO, SMALL_DENS);
            fab.set(p, UMX, 0.0);
            fab.set(p, UMY, 0.0);
        }
        let rho = fab.get(p, URHO);
        let kin = 0.5 * (fab.get(p, UMX).powi(2) + fab.get(p, UMY).powi(2)) / rho;
        let e = fab.get(p, UEDEN);
        if e - kin < rho * SMALL_PRES {
            fab.set(p, UEDEN, kin + rho * SMALL_PRES);
        }
    }
}

/// Fills ghost cells lying outside `domain` with the nearest interior
/// value (outflow / zero-gradient boundary, Castro BC code 2).
pub fn apply_outflow_bc(mf: &mut MultiFab, domain: &IndexBox) {
    let boxes: Vec<IndexBox> = mf.box_array().iter().copied().collect();
    let (dlo, dhi) = (domain.lo(), domain.hi());
    mf.fabs_mut()
        .par_iter_mut()
        .zip(boxes.par_iter())
        .for_each(|(fab, _valid)| {
            let g = fab.domain();
            if domain.contains_box(&g) {
                return;
            }
            for p in g.cells() {
                if !domain.contains(p) {
                    let clamped = IntVect::new(p.x.clamp(dlo.x, dhi.x), p.y.clamp(dlo.y, dhi.y));
                    // Only copy when the clamped source is in this fab
                    // (true for fabs abutting the boundary).
                    if g.contains(clamped) {
                        for c in 0..NCOMP {
                            let v = fab.get(clamped, c);
                            fab.set(p, c, v);
                        }
                    }
                }
            }
        });
}

/// Total conserved quantities over the valid region: `(mass, energy)` —
/// used by conservation tests.
pub fn totals(mf: &MultiFab, geom: &Geometry) -> (f64, f64) {
    let area = geom.cell_area();
    (mf.sum(URHO) * area, mf.sum(UEDEN) * area)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amr_mesh::prelude::*;

    fn uniform_mf(n: i64, max: i64, w: &Primitive, eos: &GammaLaw) -> (MultiFab, Geometry) {
        let geom = Geometry::unit_square(IntVect::splat(n));
        let ba = BoxArray::single(geom.domain).max_size(max);
        let dm = DistributionMapping::new(&ba, 1, DistributionStrategy::Sfc);
        let mut mf = MultiFab::new(ba, dm, NCOMP, NGROW);
        let u = w.to_conserved(eos);
        mf.set_val(URHO, u.rho);
        mf.set_val(UMX, u.mx);
        mf.set_val(UMY, u.my);
        mf.set_val(UEDEN, u.e);
        (mf, geom)
    }

    fn fill(domain: IndexBox) -> impl FnMut(&mut MultiFab) {
        move |mf: &mut MultiFab| {
            mf.fill_boundary();
            apply_outflow_bc(mf, &domain);
        }
    }

    #[test]
    fn uniform_state_is_steady() {
        let eos = GammaLaw::default();
        let w = Primitive::new(1.0, 0.0, 0.0, 1.0);
        let (mut mf, geom) = uniform_mf(16, 8, &w, &eos);
        let before = totals(&mf, &geom);
        advance_level(&mut mf, &geom, 1e-3, &eos, fill(geom.domain));
        let after = totals(&mf, &geom);
        assert!((before.0 - after.0).abs() < 1e-12);
        assert!((before.1 - after.1).abs() < 1e-12);
        // Field stays exactly uniform.
        assert!((mf.max(URHO) - mf.min(URHO)).abs() < 1e-12);
    }

    #[test]
    fn uniform_advection_is_steady() {
        let eos = GammaLaw::default();
        let w = Primitive::new(1.0, 0.5, -0.25, 1.0);
        let (mut mf, geom) = uniform_mf(16, 8, &w, &eos);
        advance_level(&mut mf, &geom, 1e-3, &eos, fill(geom.domain));
        assert!((mf.max(URHO) - mf.min(URHO)).abs() < 1e-11);
        assert!((mf.max(UMX) - mf.min(UMX)).abs() < 1e-11);
    }

    #[test]
    fn interior_mass_is_conserved_without_boundary_flux() {
        // A blast in the center; before the wave reaches the boundary,
        // total mass and energy are conserved.
        let eos = GammaLaw::default();
        let w = Primitive::new(1.0, 0.0, 0.0, 1e-5);
        let (mut mf, geom) = uniform_mf(32, 16, &w, &eos);
        // Hot spot at the center.
        let hot = Primitive::new(1.0, 0.0, 0.0, 10.0).to_conserved(&eos);
        let center = IndexBox::from_lo_size(IntVect::new(14, 14), IntVect::splat(4));
        for i in 0..mf.nfabs() {
            let fab = mf.fab_mut(i);
            if let Some(r) = fab.domain().intersection(&center) {
                for p in r.cells() {
                    fab.set(p, URHO, hot.rho);
                    fab.set(p, UEDEN, hot.e);
                }
            }
        }
        let before = totals(&mf, &geom);
        let dx = geom.dx()[0];
        let c_max = eos.sound_speed(1.0, 10.0);
        let dt = 0.2 * dx / c_max;
        for _ in 0..5 {
            advance_level(&mut mf, &geom, dt, &eos, fill(geom.domain));
        }
        let after = totals(&mf, &geom);
        assert!(
            (before.0 - after.0).abs() < 1e-10 * before.0,
            "mass drifted: {} -> {}",
            before.0,
            after.0
        );
        assert!((before.1 - after.1).abs() < 1e-10 * before.1);
        // The wave actually moved: density is no longer uniform outside
        // the initial hot spot.
        assert!(mf.max(URHO) > 1.0 + 1e-6);
    }

    #[test]
    fn multi_fab_matches_single_fab() {
        // The same blast problem partitioned differently must evolve
        // identically (ghost exchange correctness).
        let eos = GammaLaw::default();
        let w = Primitive::new(1.0, 0.0, 0.0, 1e-3);
        let run = |max: i64| {
            let (mut mf, geom) = uniform_mf(32, max, &w, &eos);
            let hot = Primitive::new(2.0, 0.0, 0.0, 5.0).to_conserved(&eos);
            let center = IndexBox::from_lo_size(IntVect::new(12, 12), IntVect::splat(8));
            for i in 0..mf.nfabs() {
                let fab = mf.fab_mut(i);
                if let Some(r) = fab.domain().intersection(&center) {
                    for p in r.cells() {
                        fab.set(p, URHO, hot.rho);
                        fab.set(p, UEDEN, hot.e);
                    }
                }
            }
            let dt = 0.1 * geom.dx()[0] / eos.sound_speed(1.0, 5.0);
            for _ in 0..4 {
                advance_level(&mut mf, &geom, dt, &eos, fill(geom.domain));
            }
            // Collapse to a single array for comparison.
            let mut out = vec![0.0; (32 * 32) as usize];
            for (b, fab) in mf.iter() {
                for p in b.cells() {
                    out[(p.y * 32 + p.x) as usize] = fab.get(p, URHO);
                }
            }
            out
        };
        let a = run(32);
        let b = run(8);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-11, "{x} vs {y}");
        }
    }

    #[test]
    fn outflow_bc_copies_edge_values() {
        let eos = GammaLaw::default();
        let w = Primitive::new(3.0, 0.0, 0.0, 1.0);
        let (mut mf, geom) = uniform_mf(8, 8, &w, &eos);
        mf.set_val(URHO, 3.0);
        apply_outflow_bc(&mut mf, &geom.domain);
        let fab = mf.fab(0);
        assert_eq!(fab.get(IntVect::new(-1, 0), URHO), 3.0);
        assert_eq!(fab.get(IntVect::new(-2, 9), URHO), 3.0);
        assert_eq!(fab.get(IntVect::new(8, 8), URHO), 3.0);
    }
}
