//! Gradient-based refinement tagging.
//!
//! Mirrors Castro's Sedov tagging: cells with steep relative density or
//! pressure gradients are flagged. The tagged annulus follows the shock,
//! which is what makes the refined-level I/O volume time-dependent — the
//! central non-linearity the paper models.

use crate::eos::GammaLaw;
use crate::state::{Conserved, UEDEN, UMX, UMY, URHO};
use amr_mesh::{IntVect, MultiFab, TagMap};
use serde::{Deserialize, Serialize};

/// Gradient thresholds (relative jumps) that trigger tagging.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TagCriteria {
    /// Tag when `|rho_nb - rho| / rho` exceeds this.
    pub dengrad_rel: f64,
    /// Tag when `|p_nb - p| / p` exceeds this.
    pub presgrad_rel: f64,
}

impl Default for TagCriteria {
    fn default() -> Self {
        Self {
            dengrad_rel: 0.25,
            presgrad_rel: 0.33,
        }
    }
}

/// Tags cells of a level whose density or pressure gradient exceeds the
/// criteria. Ghost cells must be filled (1 layer used).
pub fn tag_gradients(mf: &MultiFab, eos: &GammaLaw, crit: &TagCriteria) -> TagMap {
    let mut tags = TagMap::new(mf.box_array().minimal_box());
    let offsets = [
        IntVect::new(1, 0),
        IntVect::new(-1, 0),
        IntVect::new(0, 1),
        IntVect::new(0, -1),
    ];
    for (valid, fab) in mf.iter() {
        for p in valid.cells() {
            let w = Conserved::new(
                fab.get(p, URHO),
                fab.get(p, UMX),
                fab.get(p, UMY),
                fab.get(p, UEDEN),
            )
            .to_primitive(eos);
            let mut tag = false;
            for off in offsets {
                let q = p + off;
                if !fab.domain().contains(q) {
                    continue;
                }
                let wn = Conserved::new(
                    fab.get(q, URHO),
                    fab.get(q, UMX),
                    fab.get(q, UMY),
                    fab.get(q, UEDEN),
                )
                .to_primitive(eos);
                if (wn.rho - w.rho).abs() / w.rho.max(1e-300) > crit.dengrad_rel
                    || (wn.p - w.p).abs() / w.p.max(1e-300) > crit.presgrad_rel
                {
                    tag = true;
                    break;
                }
            }
            if tag {
                tags.set(p, true);
            }
        }
    }
    tags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::NGROW;
    use crate::state::{Primitive, NCOMP};
    use amr_mesh::prelude::*;

    fn uniform(n: i64) -> MultiFab {
        let geom = Geometry::unit_square(IntVect::splat(n));
        let ba = BoxArray::single(geom.domain).max_size(n / 2);
        let dm = DistributionMapping::new(&ba, 1, DistributionStrategy::Sfc);
        let mut mf = MultiFab::new(ba, dm, NCOMP, NGROW);
        let eos = GammaLaw::default();
        let u = Primitive::new(1.0, 0.0, 0.0, 1.0).to_conserved(&eos);
        mf.set_val(URHO, u.rho);
        mf.set_val(UEDEN, u.e);
        mf
    }

    #[test]
    fn uniform_field_tags_nothing() {
        let mf = uniform(16);
        let tags = tag_gradients(&mf, &GammaLaw::default(), &TagCriteria::default());
        assert!(tags.is_empty());
    }

    #[test]
    fn density_jump_is_tagged_on_both_sides() {
        let mut mf = uniform(16);
        // Double the density in the right half.
        for i in 0..mf.nfabs() {
            let fab = mf.fab_mut(i);
            let dom = fab.domain();
            for p in dom.cells() {
                if p.x >= 8 {
                    fab.set(p, URHO, 2.0);
                }
            }
        }
        mf.fill_boundary();
        let tags = tag_gradients(&mf, &GammaLaw::default(), &TagCriteria::default());
        assert!(!tags.is_empty());
        // Tags hug the x=8 interface.
        for p in tags.domain().cells() {
            if tags.get(p) {
                assert!(p.x == 7 || p.x == 8, "unexpected tag at {p}");
            }
        }
        assert!(tags.get(IntVect::new(7, 4)));
        assert!(tags.get(IntVect::new(8, 4)));
    }

    #[test]
    fn pressure_jump_alone_is_tagged() {
        let mut mf = uniform(16);
        let eos = GammaLaw::default();
        let hot = Primitive::new(1.0, 0.0, 0.0, 10.0).to_conserved(&eos);
        for i in 0..mf.nfabs() {
            let fab = mf.fab_mut(i);
            let dom = fab.domain();
            for p in dom.cells() {
                if p.y < 4 {
                    fab.set(p, UEDEN, hot.e);
                }
            }
        }
        mf.fill_boundary();
        let tags = tag_gradients(&mf, &eos, &TagCriteria::default());
        assert!(!tags.is_empty());
        for p in tags.domain().cells() {
            if tags.get(p) {
                assert!(p.y == 3 || p.y == 4);
            }
        }
    }

    #[test]
    fn threshold_controls_sensitivity() {
        let mut mf = uniform(16);
        for i in 0..mf.nfabs() {
            let fab = mf.fab_mut(i);
            let dom = fab.domain();
            for p in dom.cells() {
                if p.x >= 8 {
                    fab.set(p, URHO, 1.2); // 20% jump
                }
            }
        }
        mf.fill_boundary();
        let strict = TagCriteria {
            dengrad_rel: 0.25,
            presgrad_rel: 10.0,
        };
        let loose = TagCriteria {
            dengrad_rel: 0.1,
            presgrad_rel: 10.0,
        };
        assert!(tag_gradients(&mf, &GammaLaw::default(), &strict).is_empty());
        assert!(!tag_gradients(&mf, &GammaLaw::default(), &loose).is_empty());
    }
}
