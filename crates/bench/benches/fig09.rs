//! Fig. 9: calibration convergence for the case4 pivot (cfl = 0.4, 4 AMR
//! levels) — each evaluated dataset_growth candidate is one curve that
//! approaches the measured per-step output sizes.

use amrproxy::{case4, compare_with_macsio, run_simulation};
use bench::{banner, write_artifact};

fn main() {
    banner(
        "fig09",
        "Fig. 9 of the paper",
        "MACSio dataset_growth calibration trace for case4 (cfl 0.4, 4 levels)",
    );
    let cfg = case4(0.4, 4, 200);
    let amr = run_simulation(&cfg, None, None);
    let cmp = compare_with_macsio(&amr, 2);

    println!(
        "target: {} output steps, first {:.4e} B, last {:.4e} B",
        cmp.amr_per_step.len(),
        cmp.amr_per_step.first().unwrap(),
        cmp.amr_per_step.last().unwrap()
    );
    println!("\ncalibration trace (one curve per evaluation):");
    println!(
        "{:>4} {:>12} {:>14} {:>14}",
        "eval", "growth", "rmse", "rmse/first"
    );
    for (i, e) in cmp.calibration.trace.iter().enumerate() {
        println!(
            "{i:>4} {:>12.6} {:>14.4e} {:>14.6}",
            e.dataset_growth,
            e.rmse,
            e.rmse / cmp.amr_per_step[0]
        );
    }
    println!(
        "\nconverged: dataset_growth = {:.6} (paper: 1.013075 for its Summit pivot)",
        cmp.calibration.dataset_growth
    );
    println!("fitted f = {:.2} (paper band: 23-25)", cmp.calibration.f);

    // Convergence claim: the best evaluation improves on the first by a
    // large factor, and the growth lands just above 1 (the paper's
    // 1.0-1.02 guidance).
    let first = cmp.calibration.trace.first().unwrap().rmse;
    let best = cmp.calibration.rmse;
    assert!(best < first, "calibration must improve");
    assert!(
        (1.0..1.06).contains(&cmp.calibration.dataset_growth),
        "growth {} out of band",
        cmp.calibration.dataset_growth
    );
    write_artifact("fig09", &cmp);
}
