//! Table II: the MACSio command-line arguments used to model AMReX-Castro
//! outputs, demonstrated against this reproduction's `macsio` binary
//! surface.

use bench::{banner, write_artifact};
use macsio::{parse_args, FileMode, Interface};

fn main() {
    banner(
        "table2",
        "Table II of the paper",
        "MACSio command line arguments used to model AMReX-Castro outputs",
    );
    let rows = [
        ("interface", "output type: miftmpl (json+binary) or json"),
        (
            "parallel_file_mode",
            "File Mode: MIF n (independent) or SIF (single)",
        ),
        ("num_dumps", "number of dumps to marshal (buffer)"),
        ("part_size", "per-task mesh part size"),
        ("avg_num_parts", "average number of mesh parts per task"),
        ("vars_per_part", "number of mesh variables on each part"),
        ("compute_time", "rough time between dumps"),
        ("meta_size", "additional metadata size per task"),
        ("dataset_growth", "multiplier factor for data growth"),
    ];
    println!("{:<20} Description", "MACSio Argument");
    for (p, d) in rows {
        println!("{p:<20} {d}");
    }

    // Every argument parses through the reimplemented CLI.
    let cfg = parse_args([
        "--nprocs",
        "32",
        "--interface",
        "miftmpl",
        "--parallel_file_mode",
        "MIF",
        "32",
        "--num_dumps",
        "20",
        "--part_size",
        "1550000",
        "--avg_num_parts",
        "1",
        "--vars_per_part",
        "1",
        "--compute_time",
        "0.25",
        "--meta_size",
        "1K",
        "--dataset_growth",
        "1.013075",
    ])
    .expect("Table II flags parse");
    assert_eq!(cfg.interface, Interface::Miftmpl);
    assert_eq!(cfg.parallel_file_mode, FileMode::Mif(32));
    println!("\nEquivalent invocation accepted by this reimplementation:");
    println!("  {}", cfg.command_line());
    let table: Vec<(String, String)> = rows
        .iter()
        .map(|(p, d)| (p.to_string(), d.to_string()))
        .collect();
    write_artifact("table2", &(table, cfg));
}
