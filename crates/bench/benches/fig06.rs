//! Fig. 6: dependency of the cumulative output size on the CFL number and
//! the number of AMR levels, for the case4 pivot (512^2 L0 mesh, 32
//! tasks).

use amrproxy::{case4, run_simulation};
use bench::{banner, print_series, write_artifact};

fn main() {
    banner(
        "fig06",
        "Fig. 6 of the paper",
        "Cumulative output size vs (CFL, max_level) for the 512^2 case4 pivot",
    );
    let mut artifacts = Vec::new();
    let mut finals: Vec<(f64, usize, f64)> = Vec::new();
    for &maxl in &[2usize, 4] {
        for &cfl in &[0.3, 0.4, 0.5, 0.6] {
            // 120 outputs: the paper's 20-output window sits on Castro's
            // early transient; the oracle needs the post-ignition regime
            // for the CFL effect to accumulate (see EXPERIMENTS.md).
            let cfg = case4(cfl, maxl, 120);
            let r = run_simulation(&cfg, None, None);
            let s = r.xy_series();
            let series: Vec<(f64, f64)> = s.points.iter().map(|p| (p.x, p.y)).collect();
            println!(
                "cfl={cfl:.1} maxl={maxl}: final cumulative = {:.4e} bytes over {} outputs",
                s.final_bytes(),
                series.len()
            );
            finals.push((cfl, maxl, s.final_bytes()));
            artifacts.push((cfl, maxl, series.clone()));
            if (cfl - 0.4).abs() < 1e-9 {
                print_series(&format!("cfl={cfl} maxl={maxl}"), &series);
            }
        }
    }

    // Paper claims: max_level dominates; CFL has a smaller but monotone
    // influence.
    let total = |cfl: f64, maxl: usize| {
        finals
            .iter()
            .find(|(c, m, _)| (*c - cfl).abs() < 1e-9 && *m == maxl)
            .map(|(_, _, b)| *b)
            .unwrap()
    };
    for &cfl in &[0.3, 0.4, 0.5, 0.6] {
        assert!(
            total(cfl, 4) > total(cfl, 2),
            "more levels must produce more bytes at cfl {cfl}"
        );
    }
    let level_effect = total(0.4, 4) / total(0.4, 2);
    let cfl_effect = total(0.6, 4) / total(0.3, 4);
    println!(
        "\nlevel effect (maxl 4 / maxl 2 at cfl .4): {level_effect:.3}x\n\
         cfl effect   (cfl .6 / cfl .3 at maxl 4): {cfl_effect:.3}x"
    );
    assert!(
        level_effect > cfl_effect,
        "the number of AMR levels must dominate the CFL effect"
    );
    write_artifact("fig06", &artifacts);
}
