//! Backend × codec comparison: one fixed AMR workload driven through
//! every io-engine backend and compression codec, reporting per-scenario
//! dump times, file counts, physical volume, and wall clock from the
//! storage model — the backend-level counterpart of the paper's MIF/SIF
//! comparison, extended with the AMRIC-style data-reduction lever.
//!
//! Results persist in the append-only store at
//! `results/store/backend_compare/` (the old `results/backend_compare.json`
//! blob is readable via `amrproxy::store::read_legacy_blob`); re-running
//! the bench resumes every already-persisted cell instead of
//! re-executing it.

use amrproxy::spec::ExperimentSpec;
use amrproxy::store::{run_spec, ResultsStore};
use amrproxy::{CastroSedovConfig, Engine};
use bench::{banner, human_bytes};
use io_engine::{BackendSpec, CodecSpec};
use iosim::StorageModel;

struct Row {
    backend: String,
    codec: String,
    total_bytes: u64,
    physical_bytes: u64,
    total_files: u64,
    wall_time: f64,
    speedup_vs_fpp: f64,
}

fn main() {
    banner(
        "backend_compare",
        "io-engine backend sweep (ADIOS2/AMRIC-style levers over the Fig. 2 workload)",
        "N-to-N vs BP-style aggregation vs deferred burst-buffer staging",
    );
    let nprocs = 64;
    let base = CastroSedovConfig {
        name: "cmp".into(),
        engine: Engine::Oracle,
        n_cell: 512,
        max_level: 2,
        max_step: 20,
        plot_int: 2,
        nprocs,
        account_only: true,
        compute_ns_per_cell: 1_000.0,
        ..Default::default()
    };
    let backends = [
        BackendSpec::FilePerProcess,
        BackendSpec::Aggregated(4),
        BackendSpec::Aggregated(16),
        BackendSpec::Aggregated(nprocs),
        BackendSpec::Deferred(1),
    ];
    let codecs = [CodecSpec::Identity, CodecSpec::LossyQuant(8)];
    let storage = StorageModel::summit_alpine(1.0 / 9.0);

    // The sweep as a declarative spec, executed against the append-only
    // store: already-persisted cells are served back from disk.
    let spec = ExperimentSpec::over("backend_compare", &[base])
        .backends(&backends)
        .codecs(&codecs);
    let mut store = ResultsStore::open(bench::results_dir().join("store/backend_compare"))
        .expect("open results store");
    let report = run_spec(&spec, &mut store, Some(&storage)).expect("run spec");
    println!(
        "store {}: {} cells executed, {} resumed",
        store.dir().display(),
        report.executed,
        report.resumed
    );
    let summaries = report.summaries;

    // The baseline wall comes back out through the query plane.
    let fpp_walls = store
        .query()
        .filter("backend", "fpp")
        .filter("codec", "identity")
        .numbers("wall_time");
    let fpp_wall = *fpp_walls.first().expect("fpp baseline present");
    let mut rows = Vec::new();
    println!(
        "\n{:<12} {:>10} {:>12} {:>12} {:>8} {:>12} {:>10}",
        "backend", "codec", "logical", "physical", "files", "wall (s)", "speedup"
    );
    for s in &summaries {
        let row = Row {
            backend: s.backend.clone(),
            codec: s.codec.clone(),
            total_bytes: s.total_bytes,
            physical_bytes: s.physical_bytes,
            total_files: s.physical_files,
            wall_time: s.wall_time,
            speedup_vs_fpp: fpp_wall / s.wall_time,
        };
        println!(
            "{:<12} {:>10} {:>12} {:>12} {:>8} {:>12.4} {:>9.3}x",
            row.backend,
            row.codec,
            human_bytes(row.total_bytes),
            human_bytes(row.physical_bytes),
            row.total_files,
            row.wall_time,
            row.speedup_vs_fpp
        );
        rows.push(row);
    }

    // The levers must actually lever: aggregation and overlap beat the
    // N-to-N baseline on this metadata-heavy workload, and compression
    // never ships more physical bytes than the identity column.
    let best_agg = rows
        .iter()
        .filter(|r| r.backend.starts_with("agg") && r.codec == "identity")
        .map(|r| r.wall_time)
        .fold(f64::INFINITY, f64::min);
    let deferred = rows
        .iter()
        .find(|r| r.backend.starts_with("deferred") && r.codec == "identity")
        .expect("deferred present")
        .wall_time;
    assert!(best_agg < fpp_wall, "aggregation must beat N-to-N");
    assert!(deferred < fpp_wall, "overlap must beat N-to-N");
    assert!(
        rows.iter().all(|r| r.total_bytes == rows[0].total_bytes),
        "logical byte accounting backend- and codec-invariant"
    );
    for r in rows.iter().filter(|r| r.codec != "identity") {
        let id = rows
            .iter()
            .find(|i| i.backend == r.backend && i.codec == "identity")
            .expect("identity twin");
        assert!(
            r.physical_bytes < id.physical_bytes,
            "{}: compression must shrink the wire volume",
            r.backend
        );
    }

    // The per-backend aggregate, straight from the store.
    println!("\nmean wall by backend (store group_mean):");
    for (backend, wall) in store.query().group_mean("backend", "wall_time") {
        println!("  {backend:<12} {wall:.4} s");
    }
}
