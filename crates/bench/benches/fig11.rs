//! Fig. 11: the large 8192^2 L0 Sedov run — non-smooth per-step output
//! at scale — against the first-order MACSio kernel model.

use amrproxy::{big8192, compare_with_macsio, run_simulation};
use bench::{banner, write_artifact};

fn main() {
    banner(
        "fig11",
        "Fig. 11 of the paper",
        "Large 8192^2 mesh: non-smooth output vs the MACSio kernel approximation",
    );
    let cfg = big8192(120);
    eprintln!("running the 8192^2 oracle hierarchy (~120 outputs)...");
    let amr = run_simulation(&cfg, None, None);
    let per_step = amr.per_step_bytes();
    println!("outputs: {}", per_step.len());

    // The figure's qualitative feature: at this scale the refined-level
    // contribution is a small, non-smooth ripple on a large L0 baseline.
    let l0_share = {
        let per_level = amr.tracker.bytes_per_level();
        per_level[&0] as f64 / amr.tracker.total_bytes() as f64
    };
    println!("L0 share of total bytes: {:.1}%", 100.0 * l0_share);
    assert!(
        l0_share > 0.5,
        "at large scale the L0 baseline dominates, got {l0_share}"
    );
    let spread = {
        let lo = per_step.iter().copied().fold(f64::MAX, f64::min);
        let hi = per_step.iter().copied().fold(f64::MIN, f64::max);
        (hi - lo) / lo
    };
    println!(
        "per-step size spread: {:.3}% (the paper's 8192^2 case varies in the 4th digit)",
        100.0 * spread
    );
    assert!(
        spread < 0.25,
        "variation must be a ripple, not a trend: {spread}"
    );

    let cmp = compare_with_macsio(&amr, 2);
    println!(
        "\nMACSio kernel: growth={:.6} f={:.2} MAPE={:.3}% final_err={:+.3}%",
        cmp.calibration.dataset_growth,
        cmp.calibration.f,
        cmp.mape_percent,
        100.0 * cmp.final_error
    );
    println!("{:>6} {:>16} {:>16}", "step", "AMR bytes", "MACSio bytes");
    for (i, (a, m)) in cmp
        .amr_per_step
        .iter()
        .zip(&cmp.macsio_per_step)
        .enumerate()
    {
        if i % 5 == 0 || i + 1 == cmp.amr_per_step.len() {
            println!("{i:>6} {a:>16.6e} {m:>16.6e}");
        }
    }
    // "MACSio can generate kernels that are in the vicinity of these
    // values, while not necessarily providing an exact proxy for the
    // observed non-smooth behavior."
    assert!(cmp.mape_percent < 5.0, "MAPE {}", cmp.mape_percent);
    write_artifact("fig11", &cmp);
}
