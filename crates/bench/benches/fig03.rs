//! Fig. 3: MACSio's N-to-N output pattern with the miftmpl interface,
//! ordered by task and output step.

use bench::{banner, human_bytes, write_artifact};
use iosim::{IoTracker, MemFs, Vfs};
use macsio::{run, FileMode, MacsioConfig};

fn main() {
    banner(
        "fig03",
        "Fig. 3 of the paper",
        "MACSio N-to-N output pattern (miftmpl interface), by task and step",
    );
    let cfg = MacsioConfig {
        nprocs: 4,
        num_dumps: 3,
        part_size: 100_000,
        parallel_file_mode: FileMode::Mif(4),
        ..Default::default()
    };
    let fs = MemFs::new();
    let tracker = IoTracker::new();
    let report = run(&cfg, &fs, &tracker, None).expect("macsio run");

    println!("data");
    for f in fs.list("/") {
        if !f.contains("root") {
            println!(
                "    {:<32} {:>12}",
                f.trim_start_matches('/'),
                human_bytes(fs.file_size(&f).unwrap())
            );
        }
    }
    println!("metadata");
    for f in fs.list("/") {
        if f.contains("root") {
            println!(
                "    {:<32} {:>12}",
                f.trim_start_matches('/'),
                human_bytes(fs.file_size(&f).unwrap())
            );
        }
    }

    // The naming of the figure: macsio_json_{task:05}_{step:03}.json and
    // macsio_json_root_{step:03}.json.
    let files = fs.list("/");
    assert!(files.contains(&"/macsio_json_00000_000.json".to_string()));
    assert!(files.contains(&"/macsio_json_00003_002.json".to_string()));
    assert!(files.contains(&"/macsio_json_root_000.json".to_string()));
    println!(
        "\nfiles: {}  total: {}",
        report.files_written,
        human_bytes(report.total_bytes)
    );
    write_artifact("fig03", &files);
}
