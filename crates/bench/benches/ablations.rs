//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. DistributionMapping strategy vs per-task I/O imbalance (supports the
//!    Fig. 8 volatility claim).
//! 2. Clustering `grid_eff` vs grid count / covered cells.
//! 3. MACSio MIF group size vs file count and burst duration.
//! 4. Storage server count vs burst duration (the dynamic knob).

use amr_mesh::prelude::*;
use bench::{banner, write_artifact};
use hydro::{annulus_fine_grids, OracleConfig, OracleSim};
use iosim::{IoTracker, MemFs, StorageModel};
use macsio::{FileMode, MacsioConfig};
use serde_json::json;

fn dm_strategy_ablation() -> serde_json::Value {
    println!("\n## 1. DistributionMapping strategy vs per-task imbalance");
    let mut sim = OracleSim::new(OracleConfig {
        n_cell: 512,
        max_level: 2,
        nranks: 32,
        ..Default::default()
    });
    for _ in 0..40 {
        sim.step();
    }
    let l1 = &sim.levels()[1];
    let weights: Vec<i64> = l1.ba.iter().map(|b| b.num_pts()).collect();
    let mut rows = Vec::new();
    println!("{:>12} {:>10} {:>12}", "strategy", "boxes", "max/mean");
    for (name, strat) in [
        ("round-robin", DistributionStrategy::RoundRobin),
        ("knapsack", DistributionStrategy::Knapsack),
        ("sfc", DistributionStrategy::Sfc),
    ] {
        let dm = DistributionMapping::new(&l1.ba, 32, strat);
        let imb = dm.imbalance(&weights);
        println!("{name:>12} {:>10} {imb:>12.3}", l1.ba.len());
        rows.push(json!({"strategy": name, "imbalance": imb, "boxes": l1.ba.len()}));
    }
    // Even the best strategy leaves residual imbalance on an annulus —
    // the structural reason MACSio cannot model per-rank loads.
    let best = rows
        .iter()
        .map(|r| r["imbalance"].as_f64().unwrap())
        .fold(f64::MAX, f64::min);
    println!("best achievable imbalance: {best:.3} (> 1 by construction of AMR)");
    json!({"rows": rows, "best": best})
}

fn grid_eff_ablation() -> serde_json::Value {
    println!("\n## 2. Clustering grid_eff vs grids and covered cells");
    let geom = Geometry::unit_square(IntVect::splat(512));
    let mut rows = Vec::new();
    println!(
        "{:>9} {:>8} {:>12} {:>10}",
        "grid_eff", "grids", "cells", "waste"
    );
    for grid_eff in [0.5, 0.6, 0.7, 0.8, 0.9] {
        let params = GridParams {
            ref_ratio: 2,
            blocking_factor: 8,
            max_grid_size: 256,
            n_error_buf: 1,
            grid_eff,
        };
        let ba = annulus_fine_grids(&geom, [0.5, 0.5], 0.25, 0.28, &params);
        let ring_cells =
            std::f64::consts::PI * (0.28f64.powi(2) - 0.25f64.powi(2)) * (1024.0f64).powi(2);
        let waste = ba.num_pts() as f64 / ring_cells;
        println!(
            "{grid_eff:>9.1} {:>8} {:>12} {waste:>10.2}",
            ba.len(),
            ba.num_pts()
        );
        rows.push(json!({
            "grid_eff": grid_eff, "grids": ba.len(),
            "cells": ba.num_pts(), "waste": waste,
        }));
    }
    json!(rows)
}

fn mif_group_ablation() -> serde_json::Value {
    println!("\n## 3. MACSio MIF group size vs files and burst duration");
    let storage = StorageModel::ideal(8, 1e9);
    let mut rows = Vec::new();
    println!("{:>10} {:>8} {:>12}", "MIF n", "files", "burst (s)");
    for n in [1usize, 4, 16, 64] {
        let cfg = MacsioConfig {
            nprocs: 64,
            num_dumps: 1,
            part_size: 1_000_000,
            parallel_file_mode: FileMode::Mif(n),
            ..Default::default()
        };
        let fs = MemFs::with_retention(0);
        let tracker = IoTracker::new();
        let report = macsio::run(&cfg, &fs, &tracker, Some(&storage)).unwrap();
        let burst = report.timeline.bursts()[0].duration();
        println!("{n:>10} {:>8} {burst:>12.4}", report.files_written);
        rows.push(json!({"mif": n, "files": report.files_written, "burst_s": burst}));
    }
    // Fewer files serialize ranks within a group: N-to-N must be fastest.
    let t_1 = rows[0]["burst_s"].as_f64().unwrap();
    let t_n = rows.last().unwrap()["burst_s"].as_f64().unwrap();
    assert!(
        t_n < t_1,
        "N-to-N ({t_n}) must beat single-group MIF ({t_1})"
    );
    json!(rows)
}

fn storage_ablation() -> serde_json::Value {
    println!("\n## 4. Storage server count vs burst duration");
    let mut rows = Vec::new();
    println!(
        "{:>9} {:>12} {:>16}",
        "servers", "burst (s)", "agg BW (GB/s)"
    );
    for servers in [1usize, 4, 16, 77] {
        let storage = StorageModel {
            variability_sigma: 0.0,
            metadata_latency: 1e-3,
            ..StorageModel::summit_alpine(1.0)
        };
        let storage = StorageModel {
            nservers: servers,
            ..storage
        };
        let cfg = MacsioConfig {
            nprocs: 128,
            num_dumps: 1,
            part_size: 4_000_000,
            ..Default::default()
        };
        let fs = MemFs::with_retention(0);
        let tracker = IoTracker::new();
        let report = macsio::run(&cfg, &fs, &tracker, Some(&storage)).unwrap();
        let b = report.timeline.bursts()[0];
        let bw = b.bandwidth() / 1e9;
        println!("{servers:>9} {:>12.4} {bw:>16.2}", b.duration());
        rows.push(json!({"servers": servers, "burst_s": b.duration(), "bw_gbs": bw}));
    }
    let t_1 = rows[0]["burst_s"].as_f64().unwrap();
    let t_77 = rows.last().unwrap()["burst_s"].as_f64().unwrap();
    assert!(t_77 < t_1 / 8.0, "server scaling must shorten bursts");
    json!(rows)
}

fn main() {
    banner(
        "ablations",
        "design-choice ablations (DESIGN.md)",
        "DM strategy, grid_eff, MIF grouping, storage scaling",
    );
    let artifact = json!({
        "dm_strategy": dm_strategy_ablation(),
        "grid_eff": grid_eff_ablation(),
        "mif_groups": mif_group_ablation(),
        "storage": storage_ablation(),
    });
    write_artifact("ablations", &artifact);
}
