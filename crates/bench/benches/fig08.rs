//! Fig. 8: output generation at each timestep per compute task for the 4
//! mesh levels of case27 (1024^2 L0 mesh, 64 ranks, 5 output steps) —
//! the per-task imbalance that limits MACSio's granularity to the level.

use amrproxy::{case27, run_simulation};
use bench::{banner, human_bytes, write_artifact};
use iosim::IoKind;

fn main() {
    banner(
        "fig08",
        "Fig. 8 of the paper",
        "Per-task bytes per output step at each of the 4 mesh levels (case27)",
    );
    let cfg = case27();
    let r = run_simulation(&cfg, None, None);
    let steps = r.tracker.steps();
    let levels = r.tracker.levels();
    println!(
        "output steps: {:?}  levels: {:?}  tasks: {}",
        steps, levels, cfg.nprocs
    );
    assert!(
        levels.len() >= 4,
        "case27 has 4 mesh levels, got {levels:?}"
    );

    let mut artifacts = Vec::new();
    let mut imbalance_by_level: Vec<(u32, f64)> = Vec::new();
    for &level in &levels {
        println!("\nLevel {level} (bytes per task, one row per output step):");
        let mut worst = 0.0f64;
        for &step in &steps {
            let per_task = r.tracker.bytes_per_task_of(step, level, IoKind::Data);
            let writers = per_task.iter().filter(|&&b| b > 0).count();
            let total: u64 = per_task.iter().sum();
            if total == 0 {
                continue;
            }
            let mean = total as f64 / writers.max(1) as f64;
            let max = *per_task.iter().max().unwrap() as f64;
            let imb = max / mean;
            worst = worst.max(imb);
            println!(
                "  step {step}: writers {writers:>3}/{} total {:>12} max/mean {imb:.2}",
                cfg.nprocs,
                human_bytes(total),
            );
            artifacts.push((step, level, per_task));
        }
        imbalance_by_level.push((level, worst));
    }

    println!("\nworst per-task imbalance (max/mean) by level:");
    for (level, imb) in &imbalance_by_level {
        println!("  L{level}: {imb:.2}");
    }
    // The paper's observation: refined levels show strong task imbalance
    // (AMR boxes land unevenly on ranks), which is why the MACSio model
    // stops at "level" granularity.
    let refined_imb = imbalance_by_level
        .iter()
        .filter(|(l, _)| *l > 0)
        .map(|(_, i)| *i)
        .fold(0.0f64, f64::max);
    assert!(
        refined_imb > 1.3,
        "refined levels must be visibly imbalanced, got {refined_imb}"
    );
    write_artifact("fig08", &artifacts);
}
