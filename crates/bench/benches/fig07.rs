//! Fig. 7: cumulative output size decomposed per AMR level (L0, L1, L2)
//! as a function of the cumulative output cells and CFL, for case4.

use amrproxy::{case4, run_simulation};
use bench::{banner, write_artifact};

fn main() {
    banner(
        "fig07",
        "Fig. 7 of the paper",
        "Per-level cumulative output size for the case4 pivot (L0 ~ constant, L1/L2 smooth)",
    );
    let mut artifacts = Vec::new();
    for &cfl in &[0.3, 0.6] {
        let cfg = case4(cfl, 2, 120);
        let r = run_simulation(&cfg, None, None);
        let per_level = r.tracker.cumulative_per_level_step();
        println!("\ncfl = {cfl}:");
        for (level, series) in &per_level {
            let increments: Vec<f64> = series
                .windows(2)
                .map(|w| (w[1].1 - w[0].1) as f64)
                .collect();
            let mean = increments.iter().sum::<f64>() / increments.len().max(1) as f64;
            let max_dev = increments
                .iter()
                .map(|i| (i - mean).abs() / mean)
                .fold(0.0f64, f64::max);
            println!(
                "  L{level}: final {:.4e} bytes, per-step increment {:.4e} +- {:.1}%",
                series.last().unwrap().1 as f64,
                mean,
                100.0 * max_dev
            );
            // Paper claims: L0 output is ~constant per step (driven only
            // by n_cell); refined levels vary smoothly.
            if *level == 0 {
                assert!(
                    max_dev < 0.02,
                    "L0 per-step output must be near-constant, got {max_dev}"
                );
            }
            artifacts.push((cfl, *level, series.clone()));
        }
        // Refined levels grow over the run (the shock annulus expands).
        if let Some(l1) = per_level.get(&1) {
            let first_incr = l1[1].1 - l1[0].1;
            let last_incr = l1[l1.len() - 1].1 - l1[l1.len() - 2].1;
            assert!(
                last_incr > first_incr,
                "L1 per-step output must grow: {first_incr} -> {last_incr}"
            );
        }
    }
    write_artifact("fig07", &artifacts);
}
