//! Fig. 4: the Sedov 2-D cylinder-in-Cartesian pivot case after 20
//! timesteps — (a) the AMR mesh with moving refined levels, (b) the Mach
//! number of the solution.
//!
//! Rendered as ASCII: level-coverage map (digits = finest level covering
//! each region) and a Mach-number heat map.

use amr_mesh::IntVect;
use bench::{banner, write_artifact};
use hydro::{AmrConfig, AmrSim, Conserved, TimestepControl, UEDEN, UMX, UMY, URHO};

fn main() {
    banner(
        "fig04",
        "Fig. 4 of the paper",
        "Sedov blast after 20 steps: (a) AMR mesh levels, (b) Mach number",
    );
    let cfg = AmrConfig {
        n_cell: 128,
        max_level: 2,
        grid: amr_mesh::GridParams {
            ref_ratio: 2,
            blocking_factor: 8,
            max_grid_size: 64,
            n_error_buf: 2,
            grid_eff: 0.7,
        },
        regrid_int: 2,
        nranks: 8,
        strategy: amr_mesh::DistributionStrategy::Sfc,
        ctrl: TimestepControl {
            cfl: 0.5,
            init_shrink: 0.3,
            change_max: 1.3,
        },
        tag: hydro::TagCriteria::default(),
        problem: hydro::SedovProblem::default(),
    };
    let mut sim = AmrSim::new(cfg);
    for _ in 0..40 {
        sim.step();
    }
    println!(
        "t = {:.4e} after {} steps, {} levels",
        sim.time(),
        sim.step_count(),
        sim.finest_level() + 1
    );

    // (a) Level-coverage map at a 64x32 terminal raster.
    let (w, h) = (64usize, 32usize);
    let n = sim.levels()[0].geom.domain.size().x;
    let mut level_map = vec![vec![b'0'; w]; h];
    for (lev, level) in sim.levels().iter().enumerate().skip(1) {
        let ratio = level.geom.domain.size().x / n;
        for b in level.mf.box_array().iter() {
            let coarse = b.coarsen(IntVect::splat(ratio));
            for p in coarse.cells() {
                let cx = (p.x as usize * w) / n as usize;
                let cy = (p.y as usize * h) / n as usize;
                if cy < h && cx < w {
                    level_map[h - 1 - cy][cx] = b'0' + lev as u8;
                }
            }
        }
    }
    println!("\n(a) finest level covering each region (0 = base):");
    for row in &level_map {
        println!("  {}", std::str::from_utf8(row).unwrap());
    }

    // (b) Mach number of the L0 solution (fine data averaged down).
    let eos = *sim.eos();
    let l0 = &sim.levels()[0];
    let mut mach = vec![vec![0.0f64; w]; h];
    for (valid, fab) in l0.mf.iter() {
        for p in valid.cells() {
            let wprim = Conserved::new(
                fab.get(p, URHO),
                fab.get(p, UMX),
                fab.get(p, UMY),
                fab.get(p, UEDEN),
            )
            .to_primitive(&eos);
            let cx = (p.x as usize * w) / n as usize;
            let cy = (p.y as usize * h) / n as usize;
            let m = wprim.mach(&eos);
            if mach[h - 1 - cy][cx] < m {
                mach[h - 1 - cy][cx] = m;
            }
        }
    }
    let shades = b" .:-=+*#%@";
    let m_max = mach
        .iter()
        .flatten()
        .copied()
        .fold(0.0f64, f64::max)
        .max(1e-12);
    println!("\n(b) Mach number (max = {m_max:.3}):");
    for row in &mach {
        let line: Vec<u8> = row
            .iter()
            .map(|&m| shades[((m / m_max) * (shades.len() - 1) as f64).round() as usize])
            .collect();
        println!("  {}", std::str::from_utf8(&line).unwrap());
    }

    // The physics assertions behind the figure: refinement tracks the
    // shock annulus, and the peak Mach sits away from the center.
    let refined: i64 = sim.levels()[1..]
        .iter()
        .map(|l| l.mf.box_array().num_pts())
        .sum();
    let domain_pts = sim.levels()[0].geom.domain.num_pts();
    assert!(refined > 0, "refined levels exist");
    assert!(
        refined < 4 * domain_pts,
        "refinement is localized, not global"
    );
    // The refined region at L1 is an annulus: its bounding box is much
    // larger than the region itself.
    let l1 = &sim.levels()[1];
    let bbox = l1.mf.box_array().minimal_box();
    let ring_fill = l1.mf.box_array().num_pts() as f64 / bbox.num_pts() as f64;
    println!("\nL1 ring fill fraction of its bounding box: {ring_fill:.2}");

    let summary = (
        sim.time(),
        sim.step_count(),
        sim.levels()
            .iter()
            .map(|l| l.mf.box_array().num_pts())
            .collect::<Vec<_>>(),
        m_max,
    );
    write_artifact("fig04", &summary);
}
