//! Machine-room campaign throughput: real steps/sec of the fabric-backed
//! campaign runner, and the solo vs 4-tenant simulated walls.
//!
//! Each run appends one row to the append-only store at
//! `results/store/machine_room/` — the store accumulates a history of
//! bench runs instead of overwriting one blob (old
//! `results/machine_room.json` artifacts load via
//! `amrproxy::store::read_legacy_blob`) — and still writes
//! `BENCH_campaign.json` at the repo root (the CI-facing benchmark
//! contract for this subsystem).

use amrproxy::store::ResultsStore;
use amrproxy::{run_campaign_fabric, run_campaign_timed_serial, CastroSedovConfig, Engine};
use bench::banner;
use iosim::StorageModel;
use serde::Serialize;

#[derive(Serialize)]
struct CampaignBench {
    campaign_runs: usize,
    campaign_wall_seconds: f64,
    campaign_steps_per_sec: f64,
    solo_wall_seconds: f64,
    four_tenant_wall_seconds: f64,
    four_tenant_slowdown: f64,
}

fn sedov(name: &str) -> CastroSedovConfig {
    CastroSedovConfig {
        name: name.into(),
        engine: Engine::Oracle,
        n_cell: 128,
        max_level: 2,
        max_step: 16,
        plot_int: 4,
        nprocs: 8,
        account_only: true,
        compute_ns_per_cell: 40_000.0,
        ..Default::default()
    }
}

fn main() {
    banner(
        "machine_room",
        "multi-tenant extension of the paper's storage model",
        "campaign throughput on the shared fabric: solo vs 4-tenant walls",
    );
    let storage = StorageModel {
        metadata_latency: 1e-4,
        ..StorageModel::ideal(4, 5e7)
    };

    // Solo reference (legacy path, also the correctness anchor).
    let solo = &run_campaign_timed_serial(&[sedov("solo")], &storage)[0];

    // Timed campaign: the 1/2/4/8 tenancy ladder on the fabric.
    let ladder = [1usize, 2, 4, 8];
    let started = std::time::Instant::now();
    let mut steps = 0u64;
    let mut runs = 0usize;
    let mut four = None;
    for &n in &ladder {
        let configs: Vec<CastroSedovConfig> =
            (0..n).map(|i| sedov(&format!("sedov_t{i}"))).collect();
        steps += configs.iter().map(|c| c.max_step).sum::<u64>();
        runs += n;
        let summaries = run_campaign_fabric(&configs, &storage, None, &[]);
        if n == 1 {
            assert_eq!(
                summaries[0].wall_time, solo.wall_time,
                "fabric solo must be exact"
            );
        }
        if n == 4 {
            four = Some((
                summaries.iter().map(|s| s.wall_time).sum::<f64>() / 4.0,
                summaries.iter().map(|s| s.slowdown).sum::<f64>() / 4.0,
            ));
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let (four_wall, four_slowdown) = four.expect("ladder contains n = 4");

    let result = CampaignBench {
        campaign_runs: runs,
        campaign_wall_seconds: elapsed,
        campaign_steps_per_sec: steps as f64 / elapsed,
        solo_wall_seconds: solo.wall_time,
        four_tenant_wall_seconds: four_wall,
        four_tenant_slowdown: four_slowdown,
    };
    println!(
        "{runs} runs / {steps} steps in {elapsed:.3} s real ({:.0} steps/s)",
        result.campaign_steps_per_sec
    );
    println!(
        "solo wall {:.3} s, 4-tenant wall {:.3} s (slowdown {:.3})",
        result.solo_wall_seconds, result.four_tenant_wall_seconds, result.four_tenant_slowdown
    );
    // One appended row per bench run; the store keeps the history.
    let mut store = ResultsStore::open(bench::results_dir().join("store/machine_room"))
        .expect("open results store");
    store
        .append_row("bench:machine_room", &serde_json::to_value(&result))
        .expect("append bench row");
    println!(
        "[store] {} ({} runs on record, mean {:.0} steps/s)",
        store.dir().display(),
        store.len(),
        store.query().mean("campaign_steps_per_sec")
    );

    // The repo-root benchmark contract for the machine-room subsystem.
    // Merged, not overwritten: the example and the spec-campaign smoke
    // own other columns of the same artifact (encode_mbps,
    // spec_parallel_speedup, ...) and a plain write would drop them.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");
    amrproxy::store::update_bench_artifact(
        root,
        &[
            ("campaign_runs", serde_json::to_value(&result.campaign_runs)),
            (
                "campaign_wall_seconds",
                serde_json::to_value(&result.campaign_wall_seconds),
            ),
            (
                "campaign_steps_per_sec",
                serde_json::to_value(&result.campaign_steps_per_sec),
            ),
            (
                "solo_wall_seconds",
                serde_json::to_value(&result.solo_wall_seconds),
            ),
            (
                "four_tenant_wall_seconds",
                serde_json::to_value(&result.four_tenant_wall_seconds),
            ),
            (
                "four_tenant_slowdown",
                serde_json::to_value(&result.four_tenant_slowdown),
            ),
        ],
    )
    .expect("update BENCH_campaign.json");
    println!("[artifact] {root}");
}
