//! Fig. 10: baseline case4 per-step output sizes for CFL 0.3/0.6 and
//! max_level 2/4 against the calibrated MACSio model.

use amrproxy::{case4, compare_with_macsio, run_simulation};
use bench::{banner, write_artifact};

fn main() {
    banner(
        "fig10",
        "Fig. 10 of the paper",
        "AMR vs calibrated MACSio per-step sizes across the (CFL, max_level) grid",
    );
    let mut artifacts = Vec::new();
    for &maxl in &[2usize, 4] {
        for &cfl in &[0.3, 0.6] {
            let cfg = case4(cfl, maxl, 200);
            let amr = run_simulation(&cfg, None, None);
            let cmp = compare_with_macsio(&amr, 2);
            println!(
                "\ncfl={cfl} maxl={maxl}: growth={:.6} f={:.2} MAPE={:.2}% final_err={:+.2}%",
                cmp.calibration.dataset_growth,
                cmp.calibration.f,
                cmp.mape_percent,
                100.0 * cmp.final_error
            );
            println!("{:>6} {:>14} {:>14}", "step", "AMR bytes", "MACSio bytes");
            for (i, (a, m)) in cmp
                .amr_per_step
                .iter()
                .zip(&cmp.macsio_per_step)
                .enumerate()
            {
                if i % 5 == 0 || i + 1 == cmp.amr_per_step.len() {
                    println!("{i:>6} {a:>14.4e} {m:>14.4e}");
                }
            }
            // The paper's headline: the proxy stays close per step.
            assert!(
                cmp.mape_percent < 15.0,
                "cfl={cfl} maxl={maxl}: MAPE {}",
                cmp.mape_percent
            );
            assert!(
                cmp.final_error.abs() < 0.10,
                "cfl={cfl} maxl={maxl}: final error {}",
                cmp.final_error
            );
            artifacts.push((cfl, maxl, cmp));
        }
    }

    // Paper guidance: growth increases with CFL and levels.
    let growth = |cfl: f64, maxl: usize| {
        artifacts
            .iter()
            .find(|(c, m, _)| (*c - cfl).abs() < 1e-9 && *m == maxl)
            .map(|(_, _, cmp)| cmp.calibration.dataset_growth)
            .unwrap()
    };
    println!("\ncalibrated growth grid:");
    println!(
        "  cfl .3: maxl2 {:.5}  maxl4 {:.5}",
        growth(0.3, 2),
        growth(0.3, 4)
    );
    println!(
        "  cfl .6: maxl2 {:.5}  maxl4 {:.5}",
        growth(0.6, 2),
        growth(0.6, 4)
    );
    assert!(
        growth(0.3, 4) >= growth(0.3, 2),
        "more levels -> more growth"
    );
    write_artifact("fig10", &artifacts);
}
