//! Listing 1: the proxy-app model formulation mapping the MACSio
//! executable to AMReX-Castro inputs.

use bench::{banner, write_artifact};
use model::{default_growth_guess, part_size, translate, AmrInputs, TranslationModel};

fn main() {
    banner(
        "listing1",
        "Listing 1 + Eq. (3) of the paper",
        "g(): AMReX-Castro inputs -> MACSio executable arguments",
    );
    let inputs = AmrInputs {
        max_step: 200,
        n_cell: (512, 512),
        max_level: 4,
        plot_int: 1,
        cfl: 0.4,
        nprocs: 32,
    };
    let model = TranslationModel {
        f: 23.65, // the paper's worked case4 constant
        dataset_growth: default_growth_guess(inputs.cfl, inputs.max_level),
        compute_time: 0.5,
        meta_size: 1000,
        compression_ratio: 1.0,
    };
    let cfg = translate(&inputs, &model);

    println!("AMR inputs (Table I):");
    println!("  amr.max_step   = {}", inputs.max_step);
    println!("  amr.n_cell     = {} {}", inputs.n_cell.0, inputs.n_cell.1);
    println!("  amr.max_level  = {}", inputs.max_level);
    println!("  amr.plot_int   = {}", inputs.plot_int);
    println!("  castro.cfl     = {}", inputs.cfl);
    println!("  nprocs         = {}", inputs.nprocs);
    println!("\nTranslated MACSio invocation (Listing 1):");
    println!("  {}", cfg.command_line());

    // Eq. (3) checks against the paper's worked constant.
    let ps = part_size(23.65, 512, 512, 32);
    println!("\nEq. (3): part_size = f*8*Nx*Ny/nprocs = {ps} (paper: ~1550000 for f=23.65)");
    assert!((ps as f64 - 1_550_000.0).abs() / 1_550_000.0 < 0.01);
    assert_eq!(cfg.num_dumps, 200);
    assert_eq!(cfg.nprocs, 32);
    assert!(cfg.dataset_growth >= 1.0 && cfg.dataset_growth <= 1.02);
    write_artifact("listing1", &(inputs, model, cfg));
}
