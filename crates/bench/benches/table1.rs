//! Table I: the AMReX-Castro input parameters varied in the study.

use amrproxy::CastroSedovConfig;
use bench::{banner, write_artifact};

fn main() {
    banner(
        "table1",
        "Table I of the paper",
        "Subset of AMReX Castro input parameters varied to understand output behaviour",
    );
    let rows = [
        ("amr.max_step", "maximum expected number of steps"),
        ("amr.n_cell", "number of cells at Level 0 in each direction"),
        ("amr.max_level", "maximum level of refinement allowed"),
        ("amr.plot_int", "frequency of plot outputs"),
        ("castro.cfl", "CFL condition"),
    ];
    println!("{:<18} Description", "Parameter");
    for (p, d) in rows {
        println!("{p:<18} {d}");
    }

    // Show the concrete defaults this reproduction binds them to.
    let cfg = CastroSedovConfig::default();
    println!("\nBaseline values (Listing 2 defaults):");
    for (k, v) in cfg.inputs() {
        if rows.iter().any(|(p, _)| *p == k) || k == "amr.regrid_int" {
            println!("  {k} = {v}");
        }
    }
    let table: Vec<(String, String)> = rows
        .iter()
        .map(|(p, d)| (p.to_string(), d.to_string()))
        .collect();
    write_artifact("table1", &table);
}
