//! Criterion micro-benchmarks of the performance-critical kernels:
//! box algebra, clustering, the hydro sweep, plotfile serialization,
//! MACSio marshalling, and model calibration.

use amr_mesh::prelude::*;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hydro::{annulus_fine_grids, GammaLaw, Primitive, NCOMP, NGROW, UEDEN, URHO};
use iosim::{IoTracker, MemFs};
use macsio::{marshal_part, Interface, MacsioConfig, MeshPart};
use model::{calibrate_growth, predicted_series};
use plotfile::{write_plotfile, PlotLevel, PlotfileSpec};

fn bench_box_algebra(c: &mut Criterion) {
    let boxes: Vec<IndexBox> = (0..1000)
        .map(|i| {
            let x = (i * 37) % 512;
            let y = (i * 91) % 512;
            IndexBox::from_lo_size(IntVect::new(x, y), IntVect::new(48, 32))
        })
        .collect();
    let probe = IndexBox::from_lo_size(IntVect::new(200, 200), IntVect::splat(100));
    c.bench_function("box_intersections_1000", |b| {
        b.iter(|| {
            let mut hits = 0;
            for bx in &boxes {
                if bx.intersection(black_box(&probe)).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    let ba = BoxArray::new(boxes);
    c.bench_function("boxarray_max_size", |b| {
        b.iter(|| black_box(&ba).max_size(16).len())
    });
}

fn bench_clustering(c: &mut Criterion) {
    let n = 256;
    let domain = IndexBox::at_origin(IntVect::splat(n));
    let mut tags = TagMap::new(domain);
    let cm = n as f64 / 2.0;
    for p in domain.cells() {
        let dx = p.x as f64 + 0.5 - cm;
        let dy = p.y as f64 + 0.5 - cm;
        let r = (dx * dx + dy * dy).sqrt();
        if (r - 80.0).abs() < 4.0 {
            tags.set(p, true);
        }
    }
    c.bench_function("berger_rigoutsos_ring_256", |b| {
        b.iter(|| cluster(black_box(&tags), ClusterParams::default()).len())
    });
    let geom = Geometry::unit_square(IntVect::splat(2048));
    c.bench_function("annulus_grids_2048", |b| {
        b.iter(|| {
            annulus_fine_grids(
                black_box(&geom),
                [0.5, 0.5],
                0.25,
                0.27,
                &GridParams::default(),
            )
            .len()
        })
    });
}

fn bench_distribution(c: &mut Criterion) {
    let ba = BoxArray::single(IndexBox::at_origin(IntVect::splat(1024))).max_size(32);
    c.bench_function("dm_sfc_1024boxes", |b| {
        b.iter(|| DistributionMapping::new(black_box(&ba), 64, DistributionStrategy::Sfc))
    });
    c.bench_function("dm_knapsack_1024boxes", |b| {
        b.iter(|| DistributionMapping::new(black_box(&ba), 64, DistributionStrategy::Knapsack))
    });
}

fn bench_hydro_sweep(c: &mut Criterion) {
    let eos = GammaLaw::default();
    let geom = Geometry::unit_square(IntVect::splat(64));
    let ba = BoxArray::single(geom.domain);
    let dm = DistributionMapping::new(&ba, 1, DistributionStrategy::Sfc);
    let mut mf = MultiFab::new(ba, dm, NCOMP, NGROW);
    let u = Primitive::new(1.0, 0.1, -0.1, 1.0).to_conserved(&eos);
    mf.set_val(URHO, u.rho);
    mf.set_val(UEDEN, u.e);
    mf.set_val(hydro::UMX, u.mx);
    mf.set_val(hydro::UMY, u.my);
    let valid = mf.valid_box(0);
    c.bench_function("muscl_hllc_sweep_64x64", |b| {
        b.iter(|| {
            let mut fab = mf.fab(0).clone();
            hydro::sweep_fab(&mut fab, &valid, 0, black_box(1e-4), &eos);
            black_box(fab.get(IntVect::new(3, 3), URHO))
        })
    });
}

fn bench_plotfile(c: &mut Criterion) {
    let geom = Geometry::unit_square(IntVect::splat(64));
    let ba = BoxArray::single(geom.domain).max_size(32);
    let dm = DistributionMapping::new(&ba, 4, DistributionStrategy::Sfc);
    let mut mf = MultiFab::new(ba, dm, 4, 0);
    mf.set_val(0, 1.0);
    c.bench_function("plotfile_write_64x64x4", |b| {
        b.iter(|| {
            let fs = MemFs::with_retention(0);
            let tracker = IoTracker::new();
            let spec = PlotfileSpec {
                dir: "/plt".into(),
                output_counter: 1,
                time: 0.0,
                var_names: (0..4).map(|i| format!("v{i}")).collect(),
                ref_ratio: 2,
                levels: vec![PlotLevel {
                    geom,
                    mf: &mf,
                    level_steps: 0,
                }],
                inputs: vec![],
            };
            write_plotfile(&fs, &tracker, &spec).unwrap().total_bytes
        })
    });
}

fn bench_macsio_marshal(c: &mut Criterion) {
    let part = MeshPart::from_nominal_size(0, 8 * 65_536, 1);
    c.bench_function("macsio_marshal_miftmpl_512KB", |b| {
        b.iter(|| marshal_part(black_box(&part), 0, Interface::Miftmpl).len())
    });
    c.bench_function("macsio_marshal_json_512KB", |b| {
        b.iter(|| marshal_part(black_box(&part), 0, Interface::Json).len())
    });
}

fn bench_calibration(c: &mut Criterion) {
    let truth = MacsioConfig {
        nprocs: 32,
        num_dumps: 40,
        part_size: 1_550_000,
        dataset_growth: 1.0131,
        ..Default::default()
    };
    let target: Vec<f64> = predicted_series(&truth).iter().map(|&b| b as f64).collect();
    let base = MacsioConfig {
        dataset_growth: 1.0,
        ..truth.clone()
    };
    c.bench_function("calibrate_growth_40steps", |b| {
        b.iter(|| calibrate_growth(black_box(&base), &target, 0.995, 1.08, 24).dataset_growth)
    });
}

criterion_group!(
    benches,
    bench_box_algebra,
    bench_clustering,
    bench_distribution,
    bench_hydro_sweep,
    bench_plotfile,
    bench_macsio_marshal,
    bench_calibration,
);
criterion_main!(benches);
