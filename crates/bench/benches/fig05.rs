//! Fig. 5: cumulative output size per output step vs the cumulative
//! number of output cells (Eq. 1), across the Table III campaign —
//! the mixed linear / non-linear families.

use amrproxy::{run_campaign, table3_campaign};
use bench::{ascii_loglog, banner, print_series, write_artifact};
use model::linear_fit;

fn main() {
    banner(
        "fig05",
        "Fig. 5 of the paper",
        "Cumulative output size vs cumulative output cells (log-log), Table III campaign",
    );
    // The figure shows a representative subset; exclude the very largest
    // runs exactly as the paper does "for illustration purposes".
    let configs: Vec<_> = table3_campaign()
        .into_iter()
        .filter(|c| c.n_cell <= 2048)
        .collect();
    eprintln!("running {} campaign configurations...", configs.len());
    let summaries = run_campaign(&configs);

    let mut plotted: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    let mut linear_count = 0usize;
    let mut nonlinear_count = 0usize;
    for s in &summaries {
        if s.series.len() < 3 {
            continue;
        }
        let xs: Vec<f64> = s.series.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = s.series.iter().map(|p| p.1).collect();
        let fit = linear_fit(&xs, &ys);
        let tag = if fit.r2 > 0.999 {
            "linear"
        } else {
            "non-linear"
        };
        if fit.r2 > 0.999 {
            linear_count += 1;
        } else {
            nonlinear_count += 1;
        }
        println!(
            "{:<28} maxl={} cfl={:.1} R2={:.5} ({tag})",
            s.name, s.max_level, s.cfl, fit.r2
        );
        plotted.push((s.name.clone(), s.series.clone()));
    }
    println!("\n{linear_count} near-linear runs, {nonlinear_count} non-linear runs");
    // The paper's observation: both families exist, and the non-linear
    // family is driven by refinement (higher max_level).
    assert!(linear_count > 0, "a near-linear family must exist");
    assert!(nonlinear_count > 0, "a non-linear family must exist");
    let deep_runs_r2: Vec<f64> = summaries
        .iter()
        .filter(|s| s.max_level >= 4 && s.series.len() >= 3)
        .map(|s| {
            let xs: Vec<f64> = s.series.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = s.series.iter().map(|p| p.1).collect();
            linear_fit(&xs, &ys).r2
        })
        .collect();
    let shallow_runs_r2: Vec<f64> = summaries
        .iter()
        .filter(|s| s.max_level == 2 && s.series.len() >= 3)
        .map(|s| {
            let xs: Vec<f64> = s.series.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = s.series.iter().map(|p| p.1).collect();
            linear_fit(&xs, &ys).r2
        })
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "mean R2: max_level=2 runs {:.6}, max_level>=4 runs {:.6}",
        mean(&shallow_runs_r2),
        mean(&deep_runs_r2)
    );
    assert!(
        mean(&deep_runs_r2) < mean(&shallow_runs_r2),
        "deeper hierarchies deviate more from linearity"
    );

    println!("\nlog-log scatter (each mark family = one run):");
    print!("{}", ascii_loglog(&plotted, 72, 24));

    // Print two representative series in full.
    if let Some(s) = summaries
        .iter()
        .find(|s| s.max_level == 2 && s.n_cell == 256)
    {
        print_series(&format!("{} (near-linear)", s.name), &s.series);
    }
    if let Some(s) = summaries.iter().find(|s| s.max_level == 4) {
        print_series(&format!("{} (non-linear)", s.name), &s.series);
    }
    write_artifact("fig05", &summaries);
}
