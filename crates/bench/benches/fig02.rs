//! Fig. 2: the Castro plotfile analysis-output directory structure.
//!
//! Writes one real plotfile dump (3 levels, 4 ranks) into the in-memory
//! filesystem and prints the resulting tree, which must match the paper's
//! figure: per-step directory, Header/job_info metadata, per-level
//! directories with Cell_H and per-task Cell_D files.

use amrproxy::{run_simulation, CastroSedovConfig, Engine};
use bench::{banner, human_bytes, write_artifact};
use iosim::{MemFs, Vfs};

fn main() {
    banner(
        "fig02",
        "Fig. 2 of the paper",
        "Castro plotfile output structure, Sedov 2D cylinder-in-Cartesian case",
    );
    let cfg = CastroSedovConfig {
        engine: Engine::Hydro,
        n_cell: 64,
        max_level: 2,
        max_step: 20,
        plot_int: 20,
        nprocs: 4,
        grid: amr_mesh::GridParams {
            ref_ratio: 2,
            blocking_factor: 8,
            max_grid_size: 32,
            n_error_buf: 2,
            grid_eff: 0.7,
        },
        ctrl: hydro::TimestepControl {
            cfl: 0.5,
            init_shrink: 0.3,
            change_max: 1.3,
        },
        ..Default::default()
    };
    let fs = MemFs::new();
    let result = run_simulation(&cfg, Some(&fs), None);

    let mut listing: Vec<(String, u64)> = fs
        .list("/")
        .into_iter()
        .map(|p| {
            let size = fs.file_size(&p).unwrap_or(0);
            (p, size)
        })
        .collect();
    listing.sort();

    // Print as a tree grouped by directory.
    let mut last_dir = String::new();
    for (path, size) in &listing {
        let parts: Vec<&str> = path.trim_start_matches('/').split('/').collect();
        let dir = parts[..parts.len() - 1].join("/");
        if dir != last_dir {
            println!("{dir}/");
            last_dir = dir;
        }
        println!(
            "    {:<16} {:>12}",
            parts.last().unwrap(),
            human_bytes(*size)
        );
    }

    // Structural assertions mirroring the figure.
    let files = fs.list("/");
    assert!(files.iter().any(|f| f.ends_with("/Header")));
    assert!(files.iter().any(|f| f.ends_with("/job_info")));
    assert!(files.iter().any(|f| f.contains("/Level_0/Cell_H")));
    assert!(files.iter().any(|f| f.contains("/Level_0/Cell_D_00000")));
    assert!(files.iter().any(|f| f.contains("/Level_1/")));
    println!(
        "\nplot dumps: {}   files: {}   total: {}",
        result.outputs,
        files.len(),
        human_bytes(fs.total_bytes())
    );
    write_artifact("fig02", &listing);
}
