//! Table III: the 47-run campaign parameter ranges.

use amrproxy::table3_campaign;
use bench::{banner, write_artifact};

fn main() {
    banner(
        "table3",
        "Table III of the paper",
        "AMReX Castro input parameter ranges for the 47-run Sedov campaign",
    );
    let runs = table3_campaign();
    assert_eq!(runs.len(), 47, "the paper performed 47 runs");

    let min_max = |vals: Vec<f64>| {
        (
            vals.iter().copied().fold(f64::MAX, f64::min),
            vals.iter().copied().fold(f64::MIN, f64::max),
        )
    };
    let (ncell_lo, ncell_hi) = min_max(runs.iter().map(|r| r.n_cell as f64).collect());
    let (maxl_lo, maxl_hi) = min_max(runs.iter().map(|r| r.max_level as f64).collect());
    let (pi_lo, pi_hi) = min_max(runs.iter().map(|r| r.plot_int as f64).collect());
    let (cfl_lo, cfl_hi) = min_max(runs.iter().map(|r| r.cfl()).collect());
    let (np_lo, np_hi) = min_max(runs.iter().map(|r| r.nprocs as f64).collect());

    println!("{:<16} Range (this campaign)", "Parameter");
    println!("{:<16} {} runs", "total", runs.len());
    println!(
        "{:<16} ({ncell_lo} x {ncell_lo}) - ({ncell_hi} x {ncell_hi})",
        "amr.n_cell"
    );
    println!("{:<16} {maxl_lo} - {maxl_hi}", "amr.max_level");
    println!("{:<16} {pi_lo} - {pi_hi}", "amr.plot_int");
    println!("{:<16} {cfl_lo} - {cfl_hi}", "castro.cfl");
    println!("{:<16} {np_lo} - {np_hi}", "nprocs");
    println!(
        "\nPaper ranges: n_cell 32^2-131072^2, max_level 2-4, plot_int 1-20, \
         cfl 0.3-0.6, nprocs 1-1024, nodes 1-512."
    );
    println!(
        "This campaign stops at 8192^2 (oracle engine); the two largest paper\n\
         meshes are out of scope here, as documented in DESIGN.md."
    );

    println!("\nAll 47 runs:");
    println!(
        "{:<28} {:>7} {:>5} {:>4} {:>5} {:>7} {:>7}",
        "name", "n_cell", "maxl", "pi", "cfl", "nprocs", "engine"
    );
    for r in &runs {
        println!(
            "{:<28} {:>7} {:>5} {:>4} {:>5} {:>7} {:>7}",
            r.name,
            r.n_cell,
            r.max_level,
            r.plot_int,
            r.cfl(),
            r.nprocs,
            if r.engine == amrproxy::Engine::Oracle {
                "oracle"
            } else {
                "hydro"
            },
        );
    }
    write_artifact("table3", &runs);
}
