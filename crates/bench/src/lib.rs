//! Shared plumbing for the figure/table regeneration benches.
//!
//! Every bench prints a human-readable table to stdout (the series the
//! paper plots) and writes a JSON artifact under `results/` so
//! EXPERIMENTS.md can cite exact numbers.
//!
//! **Layer position:** top of the workspace, next to `core` — the
//! benches under `benches/` drive every lower layer to regenerate the
//! paper's figures/tables; this library is only their shared output
//! plumbing. Key items: [`banner`], [`print_series`], [`write_artifact`],
//! [`results_dir`].
//!
//! ```
//! // The stdout shape every figure bench uses.
//! bench::banner("fig99", "demo", "doc-example banner");
//! bench::print_series("cumulative bytes", &[(1.0, 10.0), (2.0, 30.0)]);
//! ```

use serde::Serialize;
use std::path::PathBuf;

/// Directory where benches drop their JSON artifacts.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a JSON artifact for experiment `name` (e.g. `fig05`).
pub fn write_artifact<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize artifact");
    std::fs::write(&path, json).expect("write artifact");
    println!("\n[artifact] {}", path.display());
}

/// Prints a banner naming the experiment and its paper counterpart.
pub fn banner(name: &str, paper_ref: &str, description: &str) {
    println!("================================================================");
    println!("{name} — {paper_ref}");
    println!("{description}");
    println!("================================================================");
}

/// Prints an `(x, y)` series as an aligned two-column table.
pub fn print_series(title: &str, series: &[(f64, f64)]) {
    println!("\n## {title}");
    println!("{:>16}  {:>16}", "x", "y");
    for (x, y) in series {
        println!("{x:>16.6e}  {y:>16.6e}");
    }
}

/// Renders a log-log ASCII scatter of several labelled series, used for
/// quick visual inspection of Fig. 5-style plots in the terminal.
pub fn ascii_loglog(series: &[(String, Vec<(f64, f64)>)], width: usize, height: usize) -> String {
    let pts: Vec<(f64, f64)> = series.iter().flat_map(|(_, s)| s.iter().copied()).collect();
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y) in &pts {
        if x > 0.0 && y > 0.0 {
            x0 = x0.min(x.log10());
            x1 = x1.max(x.log10());
            y0 = y0.min(y.log10());
            y1 = y1.max(y.log10());
        }
    }
    if x0 >= x1 || y0 >= y1 {
        return String::from("(not enough positive data)\n");
    }
    let mut grid = vec![vec![b' '; width]; height];
    let marks = [b'*', b'o', b'x', b'+', b'#', b'@', b'%', b'&'];
    for (si, (_, s)) in series.iter().enumerate() {
        for &(x, y) in s {
            if x <= 0.0 || y <= 0.0 {
                continue;
            }
            let cx = ((x.log10() - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
            let cy = ((y.log10() - y0) / (y1 - y0) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx] = marks[si % marks.len()];
        }
    }
    let mut out = String::new();
    for row in grid {
        out.push('|');
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out
}

/// Formats bytes with a binary-ish human suffix for table readability.
pub fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1000.0 && u < UNITS.len() - 1 {
        v /= 1000.0;
        u += 1;
    }
    format!("{v:.2} {}", UNITS[u])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_scales() {
        assert_eq!(human_bytes(512), "512.00 B");
        assert_eq!(human_bytes(1_500), "1.50 KB");
        assert_eq!(human_bytes(2_500_000), "2.50 MB");
        assert_eq!(human_bytes(3_200_000_000), "3.20 GB");
    }

    #[test]
    fn ascii_plot_contains_marks() {
        let series = vec![
            ("a".to_string(), vec![(1.0, 1.0), (10.0, 100.0)]),
            ("b".to_string(), vec![(2.0, 50.0)]),
        ];
        let plot = ascii_loglog(&series, 40, 10);
        assert!(plot.contains('*'));
        assert!(plot.contains('o'));
    }

    #[test]
    fn ascii_plot_handles_degenerate_data() {
        let plot = ascii_loglog(&[("a".into(), vec![(1.0, 1.0)])], 10, 5);
        assert!(plot.contains("not enough"));
    }
}
