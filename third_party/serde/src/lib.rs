//! Offline stand-in for `serde` (+ `serde_derive`): a value-tree
//! serialization model.
//!
//! Instead of the real crate's visitor architecture, types convert to and
//! from a JSON-like [`Value`] tree. The derive macros (re-exported from
//! the local `serde_derive`) generate impls of these simplified traits;
//! the local `serde_json` stand-in renders and parses the tree. The
//! surface the workspace relies on — `#[derive(Serialize, Deserialize)]`,
//! `serde_json::{json!, to_string, to_string_pretty, to_vec, from_slice}`,
//! `Value` indexing — behaves like the real thing.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// A free-form error.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self(msg.to_string())
    }

    /// A missing-field error.
    pub fn missing_field(field: &str) -> Self {
        Self(format!("missing field `{field}`"))
    }

    /// A type-mismatch error.
    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        Self(format!("expected {expected}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A JSON number: integer-preserving where possible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// The number as `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The number as `u64` when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The number as `i64` when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            Number::Float(_) => None,
        }
    }
}

/// A JSON-like value tree. Object keys keep insertion order, matching
/// struct field declaration order on serialization.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An ordered key-value map.
    Object(Vec<(String, Value)>),
}

/// Shared `null` used by the infallible `Index` impls.
pub static NULL: Value = Value::Null;

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element of an array by index.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(idx),
            _ => None,
        }
    }

    /// The string content, when a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, when a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64`, when a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as `u64`, when an exactly-representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, when an exactly-representable number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The elements, when an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, when an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Object member access; `null` when absent or not an object.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Array element access; `null` when absent or not an array.
    fn index(&self, idx: usize) -> &Value {
        self.get_index(idx).unwrap_or(&NULL)
    }
}

macro_rules! value_eq_uint {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => n.as_u64() == Some(*other as u64),
                    _ => false,
                }
            }
        }

        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_eq_uint!(u8, u16, u32, u64, usize);

macro_rules! value_eq_sint {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => n.as_i64() == Some(*other as i64),
                    _ => false,
                }
            }
        }

        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_eq_sint!(i8, i16, i32, i64, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- Serialize impls for std types ---------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::type_mismatch("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::type_mismatch("integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::type_mismatch("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::type_mismatch("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::type_mismatch("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::type_mismatch("array", v))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::type_mismatch("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            Ok(Some(T::from_value(v)?))
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::type_mismatch("array", v))?;
                Ok(($(
                    $t::from_value(items.get($n).ok_or_else(|| Error::custom("tuple too short"))?)?,
                )+))
            }
        }
    )+};
}

ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::type_mismatch("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<u32, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_indexing_and_eq() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(Number::PosInt(7))),
            ("b".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        assert_eq!(v["a"], 7);
        assert_eq!(v["b"][0], true);
        assert!(v["missing"].is_null());
    }

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"x".to_string().to_value()).unwrap(),
            "x"
        );
        let v: Vec<(f64, f64)> = vec![(1.0, 2.0)];
        assert_eq!(Vec::<(f64, f64)>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn float_accepts_integer_value() {
        assert_eq!(f64::from_value(&7u64.to_value()).unwrap(), 7.0);
    }
}
