//! Offline stand-in for `rand`: the `Rng`/`SeedableRng`/`StdRng` subset
//! the workspace uses, with a deterministic xoshiro256** generator.
//!
//! Sequences differ from the real `rand::rngs::StdRng` (ChaCha12) but are
//! reproducible across runs and platforms, which is the property every
//! seeded experiment in this workspace relies on.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Types samplable by [`Rng::gen`] from uniform bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for the real
    /// `StdRng`; different sequence, same reproducibility contract).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // Avoid the all-zero state (unreachable from splitmix64, but
            // cheap to guard).
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn reproducible_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_interval_f64() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.gen_range(3i64..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&y));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(1234);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
