//! Offline stand-in for `criterion`: runs each registered benchmark for a
//! short, fixed budget and prints a mean-time line. No statistics, no
//! reports — just enough to keep `cargo bench` and the bench targets
//! compiling and producing comparable numbers offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark timing driver handed to the closure registered with
/// [`Criterion::bench_function`].
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a fixed wall-clock budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..3 {
            black_box(routine());
        }
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget {
            black_box(routine());
            iters += 1;
        }
        self.iters_done = iters.max(1);
        self.elapsed = start.elapsed();
    }
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean_ns = if b.iters_done > 0 {
            b.elapsed.as_nanos() as f64 / b.iters_done as f64
        } else {
            0.0
        };
        println!(
            "bench: {id:<40} {:>12.1} ns/iter ({} iters)",
            mean_ns, b.iters_done
        );
        self
    }
}

/// Groups benchmark functions under one runner entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }
}
