//! Offline derive macros for the local `serde` stand-in.
//!
//! Parses the derive input token stream by hand (no `syn`/`quote`) and
//! emits impls of the stand-in's value-tree traits:
//!
//! * `Serialize` — `fn to_value(&self) -> serde::Value`
//! * `Deserialize` — `fn from_value(&serde::Value) -> Result<Self, _>`
//!
//! Supported shapes (everything this workspace derives on):
//! structs with named fields, unit structs, and enums whose variants are
//! unit or single-field tuple ("newtype") variants. Anything else fails
//! with a compile error naming the unsupported construct.
//!
//! One field attribute is honoured: `#[serde(default)]` on a named
//! struct field makes deserialization fall back to `Default::default()`
//! when the key is absent from the value object (forward compatibility
//! for results JSON written before the field existed). All other
//! `#[serde(...)]` forms are rejected with a compile error rather than
//! silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Copy, Clone, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    NamedStruct(Vec<Field>),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// `#[serde(default)]`: absent keys deserialize to `Default::default()`.
    default: bool,
}

struct Variant {
    name: String,
    /// Number of tuple fields (0 = unit variant).
    arity: usize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&name, &shape),
                Mode::Deserialize => gen_deserialize(&name, &shape),
            };
            code.parse().expect("serde_derive: generated code parses")
        }
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error parses"),
    }
}

/// Extracts `(type name, shape)` from the derive input.
fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => {
            return Err(format!(
                "serde_derive: expected struct or enum, got {other:?}"
            ))
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde_derive: expected type name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive: generic type `{name}` is not supported by the offline stand-in"
            ));
        }
    }

    if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Err(format!(
                "serde_derive: tuple struct `{name}` is not supported by the offline stand-in"
            )),
            other => Err(format!("serde_derive: unexpected struct body {other:?}")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            other => Err(format!("serde_derive: unexpected enum body {other:?}")),
        }
    }
}

/// Advances past attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if let Some(TokenTree::Group(_)) = tokens.get(*i) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return,
        }
    }
}

/// Like [`skip_attrs_and_vis`], but inspects `#[serde(...)]` attributes
/// on the way past: returns whether `#[serde(default)]` was present, and
/// errors on any other serde attribute form (unsupported by the
/// stand-in — failing loudly beats silently changing the wire format).
fn skip_field_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> Result<bool, String> {
    let mut default = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if let Some(TokenTree::Group(attr)) = tokens.get(*i) {
                    let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
                    if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde")
                    {
                        let args = match inner.get(1) {
                            Some(TokenTree::Group(g))
                                if g.delimiter() == Delimiter::Parenthesis =>
                            {
                                g.stream().to_string()
                            }
                            _ => String::new(),
                        };
                        if args.trim() == "default" {
                            default = true;
                        } else {
                            return Err(format!(
                                "serde_derive: unsupported attribute `#[serde({})]` \
                                 (the offline stand-in only knows `#[serde(default)]`)",
                                args.trim()
                            ));
                        }
                    }
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return Ok(default),
        }
    }
}

/// Fields of a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let default = skip_field_attrs_and_vis(&tokens, &mut i)?;
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            if i >= tokens.len() {
                break;
            }
            return Err(format!(
                "serde_derive: expected field name, got {:?}",
                tokens.get(i)
            ));
        };
        fields.push(Field {
            name: id.to_string(),
            default,
        });
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("serde_derive: expected ':', got {other:?}")),
        }
        // Consume the type up to the next top-level comma, tracking angle
        // bracket depth (parens/brackets/braces arrive as single groups).
        let mut angle: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Variants of an enum body.
fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            if i >= tokens.len() {
                break;
            }
            return Err(format!(
                "serde_derive: expected variant name, got {:?}",
                tokens.get(i)
            ));
        };
        let name = id.to_string();
        i += 1;
        let arity = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                count_tuple_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde_derive: struct variant `{name}` is not supported by the offline stand-in"
                ));
            }
            _ => 0,
        };
        variants.push(Variant { name, arity });
        // Skip an optional discriminant and the trailing comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
    }
    Ok(variants)
}

/// Number of top-level comma-separated entries in a tuple field list.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle: i32 = 0;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                let f = &f.name;
                pushes.push_str(&format!(
                    "__fields.push((::std::string::String::from({f:?}), \
                     ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "{{ let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                 = ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(__fields) }}"
            )
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match v.arity {
                    0 => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\
                         ::std::string::String::from({vn:?})),\n"
                    )),
                    1 => arms.push_str(&format!(
                        "{name}::{vn}(__x0) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from({vn:?}), \
                         ::serde::Serialize::to_value(__x0))]),\n"
                    )),
                    n => {
                        let binds: Vec<String> = (0..n).map(|k| format!("__x{k}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vn:?}), \
                             ::serde::Value::Array(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let (f, default) = (&f.name, f.default);
                if default {
                    inits.push_str(&format!(
                        "{f}: match __v.get({f:?}) {{\n\
                         ::std::option::Option::Some(__x) => \
                         ::serde::Deserialize::from_value(__x)?,\n\
                         ::std::option::Option::None => ::std::default::Default::default(),\n\
                         }},\n"
                    ));
                } else {
                    inits.push_str(&format!(
                        "{f}: ::serde::Deserialize::from_value(__v.get({f:?}).ok_or_else(|| \
                         ::serde::Error::missing_field(concat!(stringify!({name}), \".\", {f:?})))?)?,\n"
                    ));
                }
            }
            format!("::std::result::Result::Ok({name} {{\n{inits}}})")
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match v.arity {
                    0 => unit_arms.push_str(&format!(
                        "{vn:?} => return ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    1 => keyed_arms.push_str(&format!(
                        "{vn:?} => return ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    n => {
                        let elems: Vec<String> = (0..n)
                            .map(|k| {
                                format!(
                                    "::serde::Deserialize::from_value(__items.get({k}).ok_or_else(\
                                     || ::serde::Error::custom(\"tuple variant too short\"))?)?"
                                )
                            })
                            .collect();
                        keyed_arms.push_str(&format!(
                            "{vn:?} => {{ let __items = __inner.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for tuple variant\"))?;\n\
                             return ::std::result::Result::Ok({name}::{vn}({})); }}\n",
                            elems.join(", ")
                        ));
                    }
                }
            }
            format!(
                "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                   match __s {{\n{unit_arms}_ => {{}}\n}}\n\
                 }}\n\
                 if let ::std::option::Option::Some(__obj) = __v.as_object() {{\n\
                   if let ::std::option::Option::Some((__key, __inner)) = __obj.first() {{\n\
                     let __inner = __inner;\n\
                     match __key.as_str() {{\n{keyed_arms}_ => {{}}\n}}\n\
                   }}\n\
                 }}\n\
                 ::std::result::Result::Err(::serde::Error::custom(concat!(\
                 \"unknown variant for \", stringify!({name}))))"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
