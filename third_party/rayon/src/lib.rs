//! Offline stand-in for `rayon`: data-parallel iterators over materialized
//! work lists, executed on scoped `std::thread`s.
//!
//! The subset implemented is what this workspace uses — `par_iter`,
//! `par_iter_mut`, `into_par_iter` on ranges, `map`, `zip`, `for_each`,
//! `collect` — with the same `Send`/`Sync` bounds as real rayon, so code
//! written against rayon compiles unchanged. Sources are materialized
//! sequentially (cheap: references or indices); the user closure runs in
//! parallel across a chunked thread fan-out, preserving input order in
//! the output.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Number of worker threads the stand-in fans out to. The OS query is
/// surprisingly expensive (cgroup/affinity reads, ~10µs on some
/// kernels) and sits on every `par_apply` call, so it is made once.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Applies `f` to every item in parallel, preserving order.
fn par_apply<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n).max(1);
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(threads);
    let mut items = items;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    while !items.is_empty() {
        let tail = items.split_off(items.len().saturating_sub(chunk_len));
        chunks.push(tail);
    }
    chunks.reverse(); // split_off takes suffixes; restore order
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("rayon stand-in worker panicked"));
        }
        out
    })
}

pub mod iter {
    use super::par_apply;

    /// A parallel iterator: a materialized work list plus deferred,
    /// parallel-applied transformations.
    pub trait ParallelIterator: Sized {
        /// Item type produced by the iterator.
        type Item: Send;

        /// Materializes all items, running deferred maps in parallel.
        fn into_vec(self) -> Vec<Self::Item>;

        /// Transforms every item with `f` (applied in parallel at the
        /// consuming call).
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync + Send,
        {
            Map { base: self, f }
        }

        /// Pairs items positionally with another parallel iterator.
        fn zip<B>(self, other: B) -> Zip<Self, B>
        where
            B: ParallelIterator,
        {
            Zip { a: self, b: other }
        }

        /// Runs `f` on every item in parallel.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync + Send,
        {
            drop(self.map(f).into_vec());
        }

        /// Collects the items into `C`, preserving input order.
        fn collect<C>(self) -> C
        where
            C: FromParallelIterator<Self::Item>,
        {
            C::from_par_vec(self.into_vec())
        }

        /// Sums the items.
        fn sum<S>(self) -> S
        where
            S: std::iter::Sum<Self::Item>,
        {
            self.into_vec().into_iter().sum()
        }
    }

    /// Collection types constructible from an ordered parallel result.
    pub trait FromParallelIterator<T> {
        /// Builds the collection from the ordered items.
        fn from_par_vec(items: Vec<T>) -> Self;
    }

    impl<T> FromParallelIterator<T> for Vec<T> {
        fn from_par_vec(items: Vec<T>) -> Self {
            items
        }
    }

    /// A materialized source of items.
    pub struct IntoParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for IntoParIter<T> {
        type Item = T;

        fn into_vec(self) -> Vec<T> {
            self.items
        }
    }

    /// Deferred map stage.
    pub struct Map<P, F> {
        base: P,
        f: F,
    }

    impl<P, R, F> ParallelIterator for Map<P, F>
    where
        P: ParallelIterator,
        R: Send,
        F: Fn(P::Item) -> R + Sync + Send,
    {
        type Item = R;

        fn into_vec(self) -> Vec<R> {
            par_apply(self.base.into_vec(), self.f)
        }
    }

    /// Positional pairing of two parallel iterators.
    pub struct Zip<A, B> {
        a: A,
        b: B,
    }

    impl<A, B> ParallelIterator for Zip<A, B>
    where
        A: ParallelIterator,
        B: ParallelIterator,
    {
        type Item = (A::Item, B::Item);

        fn into_vec(self) -> Vec<Self::Item> {
            self.a
                .into_vec()
                .into_iter()
                .zip(self.b.into_vec())
                .collect()
        }
    }

    /// Types convertible into a parallel iterator by value.
    pub trait IntoParallelIterator {
        /// The resulting iterator.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Item type.
        type Item: Send;

        /// Converts into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = IntoParIter<T>;
        type Item = T;

        fn into_par_iter(self) -> IntoParIter<T> {
            IntoParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
        type Iter = IntoParIter<&'a T>;
        type Item = &'a T;

        fn into_par_iter(self) -> IntoParIter<&'a T> {
            IntoParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
        type Iter = IntoParIter<&'a T>;
        type Item = &'a T;

        fn into_par_iter(self) -> IntoParIter<&'a T> {
            IntoParIter {
                items: self.iter().collect(),
            }
        }
    }

    macro_rules! range_into_par {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Iter = IntoParIter<$t>;
                type Item = $t;

                fn into_par_iter(self) -> IntoParIter<$t> {
                    IntoParIter { items: self.collect() }
                }
            }
        )*};
    }

    range_into_par!(usize, u32, u64, i32, i64);

    /// `par_iter()` method syntax on borrowed collections.
    pub trait IntoParallelRefIterator<'d> {
        /// The resulting iterator.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Item type (a shared reference).
        type Item: Send + 'd;

        /// Borrowing parallel iterator.
        fn par_iter(&'d self) -> Self::Iter;
    }

    impl<'d, T: Sync + 'd> IntoParallelRefIterator<'d> for [T] {
        type Iter = IntoParIter<&'d T>;
        type Item = &'d T;

        fn par_iter(&'d self) -> IntoParIter<&'d T> {
            IntoParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'d, T: Sync + 'd> IntoParallelRefIterator<'d> for Vec<T> {
        type Iter = IntoParIter<&'d T>;
        type Item = &'d T;

        fn par_iter(&'d self) -> IntoParIter<&'d T> {
            IntoParIter {
                items: self.iter().collect(),
            }
        }
    }

    /// `par_iter_mut()` method syntax on borrowed collections.
    pub trait IntoParallelRefMutIterator<'d> {
        /// The resulting iterator.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Item type (an exclusive reference).
        type Item: Send + 'd;

        /// Mutably borrowing parallel iterator.
        fn par_iter_mut(&'d mut self) -> Self::Iter;
    }

    impl<'d, T: Send + 'd> IntoParallelRefMutIterator<'d> for [T] {
        type Iter = IntoParIter<&'d mut T>;
        type Item = &'d mut T;

        fn par_iter_mut(&'d mut self) -> IntoParIter<&'d mut T> {
            IntoParIter {
                items: self.iter_mut().collect(),
            }
        }
    }

    impl<'d, T: Send + 'd> IntoParallelRefMutIterator<'d> for Vec<T> {
        type Iter = IntoParIter<&'d mut T>;
        type Item = &'d mut T;

        fn par_iter_mut(&'d mut self) -> IntoParIter<&'d mut T> {
            IntoParIter {
                items: self.iter_mut().collect(),
            }
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000usize).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_on_slice() {
        let data = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn zip_mut_for_each() {
        let mut a = vec![0i64; 64];
        let b: Vec<i64> = (0..64).collect();
        a.par_iter_mut()
            .zip(b.par_iter())
            .for_each(|(x, &y)| *x = y * y);
        assert_eq!(a[7], 49);
        assert_eq!(a[63], 63 * 63);
    }

    #[test]
    fn sum_matches_sequential() {
        let s: i64 = (0i64..100).into_par_iter().map(|x| x).sum();
        assert_eq!(s, 4950);
    }

    #[test]
    #[should_panic] // payload is "boom" inline (1 cpu) or the join message (n cpu)
    fn worker_panics_propagate() {
        (0..8usize)
            .into_par_iter()
            .map(|i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
            .for_each(|_| {});
    }
}
