//! Offline stand-in for `bytes`: a growable byte buffer with the
//! little-endian `put_*` API subset the plotfile writer uses, plus the
//! zero-copy [`Bytes`] handle the io-engine's payload plumbing shares
//! across layer crossings.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, sliceable view into a shared immutable byte
/// buffer — the stand-in for `bytes::Bytes`.
///
/// Cloning and [`Bytes::slice`] are O(1): both share the same backing
/// allocation (an `Arc<[u8]>`), so encoded payloads can cross the
/// stage → backend → filesystem → read-back layers without a copy.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `data` into a fresh shared buffer (the one unavoidable
    /// copy at the producer boundary).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Bytes in this view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A zero-copy sub-view sharing this buffer's allocation.
    ///
    /// # Panics
    /// Panics when the range is out of bounds (like slice indexing).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            lo <= hi && hi <= self.len,
            "slice {lo}..{hi} of {}",
            self.len
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            len: hi - lo,
        }
    }

    /// Copies the view out into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Self {
            data: v.into(),
            start: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len)
    }
}

/// Extension trait for appending raw values to a byte buffer.
pub trait BufMut {
    /// Appends a slice of bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable, contiguous byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Clears the buffer, retaining capacity.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Appends a slice (alias of [`BufMut::put_slice`]).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Consumes the buffer into a `Vec<u8>`.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }

    /// Freezes the buffer into an immutable, shareable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        Self { inner }
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_is_zero_copy() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(1..).as_ref(), &[3, 4]);
        // Clones and slices share the same backing allocation.
        let c = b.clone();
        assert!(Arc::ptr_eq(&b.data, &c.data));
        assert!(Arc::ptr_eq(&b.data, &s.data));
        assert_eq!(b, c);
        assert_eq!(s, vec![2u8, 3, 4]);
    }

    #[test]
    fn bytes_mut_freezes() {
        let mut m = BytesMut::new();
        m.put_slice(b"abc");
        let b = m.freeze();
        assert_eq!(&b[..], b"abc");
        assert_eq!(b.to_vec(), b"abc".to_vec());
    }

    #[test]
    fn put_values_little_endian() {
        let mut b = BytesMut::new();
        b.put_slice(b"hi");
        b.put_f64_le(1.0);
        assert_eq!(b.len(), 10);
        assert_eq!(&b[0..2], b"hi");
        assert_eq!(f64::from_le_bytes(b[2..10].try_into().unwrap()), 1.0);
    }
}
