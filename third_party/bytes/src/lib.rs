//! Offline stand-in for `bytes`: a growable byte buffer with the
//! little-endian `put_*` API subset the plotfile writer uses.

use std::ops::{Deref, DerefMut};

/// Extension trait for appending raw values to a byte buffer.
pub trait BufMut {
    /// Appends a slice of bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable, contiguous byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Clears the buffer, retaining capacity.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Appends a slice (alias of [`BufMut::put_slice`]).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Consumes the buffer into a `Vec<u8>`.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        Self { inner }
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_values_little_endian() {
        let mut b = BytesMut::new();
        b.put_slice(b"hi");
        b.put_f64_le(1.0);
        assert_eq!(b.len(), 10);
        assert_eq!(&b[0..2], b"hi");
        assert_eq!(f64::from_le_bytes(b[2..10].try_into().unwrap()), 1.0);
    }
}
