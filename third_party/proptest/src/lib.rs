//! Offline stand-in for `proptest`: deterministic randomized testing.
//!
//! Implements the subset this workspace uses — the `proptest!` macro,
//! range/tuple/`Just`/`prop_oneof!`/`prop_map` strategies, collection
//! strategies, and the `prop_assert*`/`prop_assume!` macros. No
//! shrinking: failures report the sampled inputs via the panic message
//! of the underlying assertion. Case generation is seeded from the test
//! name, so runs are reproducible.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values passing `f` (resamples on failure).
        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Mapped strategy (see [`Strategy::prop_map`]).
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Filtered strategy (see [`Strategy::prop_filter`]).
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter: no accepted value after 1000 attempts");
        }
    }

    /// Uniform choice among boxed alternatives (see `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof: no alternatives");
            Self { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            let k = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[k].sample(rng)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    (lo as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (0 A),
        (0 A, 1 B),
        (0 A, 1 B, 2 C),
        (0 A, 1 B, 2 C, 3 D),
        (0 A, 1 B, 2 C, 3 D, 4 E),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J, 10 K),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J, 10 K, 11 L),
    );
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec`s with a size drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = sample_size(&self.size, rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s with a size drawn from `size`.
    pub struct HashSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Builds a [`HashSetStrategy`].
    pub fn hash_set<S>(elem: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { elem, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = sample_size(&self.size, rng);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0;
            while out.len() < target && attempts < target * 50 + 100 {
                out.insert(self.elem.sample(rng));
                attempts += 1;
            }
            out
        }
    }

    fn sample_size(size: &Range<usize>, rng: &mut TestRng) -> usize {
        assert!(size.start < size.end, "empty size range");
        let span = (size.end - size.start) as u64;
        size.start + (rng.next_u64() % span) as usize
    }
}

pub mod test_runner {
    /// Configuration block accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: usize,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: usize) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; 64 keeps the debug-profile suite
            // quick while still exercising the input space.
            Self { cases: 64 }
        }
    }

    /// Marker returned by `prop_assume!` rejections.
    #[derive(Debug)]
    pub struct Reject;

    /// Deterministic generator (xoshiro256**) seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// A generator seeded by hashing `name` (stable across runs).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut state = h;
            let mut s = [0u64; 4];
            for w in &mut s {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *w = z ^ (z >> 31);
            }
            Self { s }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$attr:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$attr])*
            #[allow(unused_mut, clippy::redundant_closure_call)]
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __accepted = 0usize;
                let mut __attempts = 0usize;
                let __max_attempts = __config.cases * 20 + 100;
                while __accepted < __config.cases {
                    __attempts += 1;
                    if __attempts > __max_attempts {
                        panic!(
                            "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                            stringify!($name), __accepted, __config.cases
                        );
                    }
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let mut __case = || -> ::std::result::Result<(), $crate::test_runner::Reject> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    match __case() {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err(_) => continue,
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Skips the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

/// Uniform choice among the listed strategies (all must generate the same
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3i64..10, y in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
        }

        #[test]
        fn tuples_and_maps(v in (0u32..5, 0u32..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(v <= 8);
        }

        #[test]
        fn assume_skips(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1usize), Just(2), 10usize..20]) {
            prop_assert!(v == 1 || v == 2 || (10..20).contains(&v));
        }

        #[test]
        fn collections(v in prop::collection::vec(0i64..50, 1..6),
                       s in prop::collection::hash_set((0i64..30, 0i64..30), 2..10)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(s.len() >= 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_cases_respected(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }
}
