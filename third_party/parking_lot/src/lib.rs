//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the non-poisoning `Mutex`/`RwLock` API subset the workspace
//! uses. Poisoned std locks are recovered transparently (`parking_lot`
//! has no poisoning), so a panicking thread never wedges the trackers.

use std::fmt;
use std::sync;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock that never poisons.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
