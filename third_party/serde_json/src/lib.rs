//! Offline stand-in for `serde_json`: renders and parses the local
//! `serde` stand-in's [`Value`] tree as JSON text, plus the `json!`
//! macro. Compact and pretty printers mirror `serde_json`'s formatting
//! (2-space indent, `1.0`-style integral floats).

pub use serde::{Error, Number, Value};

use serde::{Deserialize, Serialize};

/// `Result` alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes any `Serialize` type into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Pretty JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

/// Parses JSON bytes into any `Deserialize` type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error::custom("invalid UTF-8"))?;
    from_str(s)
}

// --- printer --------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n)?,
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) -> Result<()> {
    use std::fmt::Write as _;
    match *n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(v) => {
            if !v.is_finite() {
                return Err(Error::custom("cannot serialize non-finite float"));
            }
            if v.fract() == 0.0 && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected byte {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!("invalid keyword at {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.pos += 1; // consume 'u''s last hex char position
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                self.pos -= 1; // parse_hex4 advances from 'u'
                                let low = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((cp - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("bad surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::custom("bad unicode escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after a `\u`, leaving `pos` on the last one.
    fn parse_hex4(&mut self) -> Result<u32> {
        // self.pos currently on 'u'.
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error::custom("bad unicode escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("bad unicode escape"))?;
        self.pos = end - 1;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if is_float {
            let f: f64 = text.parse().map_err(|_| Error::custom("bad number"))?;
            Ok(Value::Number(Number::Float(f)))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::Number(Number::PosInt(u)))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Number(Number::NegInt(i)))
        } else {
            let f: f64 = text.parse().map_err(|_| Error::custom("bad number"))?;
            Ok(Value::Number(Number::Float(f)))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::custom("expected ',' or '}' in object")),
            }
        }
    }
}

// --- json! macro ----------------------------------------------------------

/// Builds a [`Value`] from JSON-like syntax (subset of `serde_json::json!`:
/// string-literal keys, nested objects/arrays, expression values).
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Implementation detail of [`json!`].
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // Arrays.
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };

    // Objects.
    ({}) => {
        $crate::Value::Object(::std::vec::Vec::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object($crate::json_internal!(@object [] ($($tt)+)))
    };

    // Literals and expressions.
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };

    // @array: accumulate completed elements in [..], munch the rest.
    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] true $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] false $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($arr)*]),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*}),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($($rest)*)?)
    };

    // @object: accumulate completed ("key", value) entries in [..],
    // munch the rest. Keys are string literals.
    (@object [$($entries:expr,)*] ()) => {
        ::std::vec![$($entries),*]
    };
    (@object [$($entries:expr,)*] ($key:literal : null $(, $($rest:tt)*)?)) => {
        $crate::json_internal!(@object
            [$($entries,)* ($key.into(), $crate::json_internal!(null)),]
            ($($($rest)*)?))
    };
    (@object [$($entries:expr,)*] ($key:literal : true $(, $($rest:tt)*)?)) => {
        $crate::json_internal!(@object
            [$($entries,)* ($key.into(), $crate::json_internal!(true)),]
            ($($($rest)*)?))
    };
    (@object [$($entries:expr,)*] ($key:literal : false $(, $($rest:tt)*)?)) => {
        $crate::json_internal!(@object
            [$($entries,)* ($key.into(), $crate::json_internal!(false)),]
            ($($($rest)*)?))
    };
    (@object [$($entries:expr,)*] ($key:literal : [$($arr:tt)*] $(, $($rest:tt)*)?)) => {
        $crate::json_internal!(@object
            [$($entries,)* ($key.into(), $crate::json_internal!([$($arr)*])),]
            ($($($rest)*)?))
    };
    (@object [$($entries:expr,)*] ($key:literal : {$($map:tt)*} $(, $($rest:tt)*)?)) => {
        $crate::json_internal!(@object
            [$($entries,)* ($key.into(), $crate::json_internal!({$($map)*})),]
            ($($($rest)*)?))
    };
    (@object [$($entries:expr,)*] ($key:literal : $value:expr $(, $($rest:tt)*)?)) => {
        $crate::json_internal!(@object
            [$($entries,)* ($key.into(), $crate::json_internal!($value)),]
            ($($($rest)*)?))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let v = json!({
            "name": "x",
            "n": 3,
            "neg": -4,
            "pi": 1.5,
            "list": [1, 2, 3],
            "nested": { "ok": true, "nothing": null },
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["n"], 3);
        assert_eq!(back["neg"], -4);
        assert_eq!(back["nested"]["ok"], true);
        assert_eq!(back["list"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = json!({"z": 1, "a": 2});
        let text = to_string(&v).unwrap();
        assert!(text.find("\"z\"").unwrap() < text.find("\"a\"").unwrap());
    }

    #[test]
    fn expression_values() {
        let xs = vec![1usize, 2];
        let name = "abc";
        let v = json!({"xs": xs, "name": name, "sum": 1 + 2});
        assert_eq!(v["xs"][1], 2);
        assert_eq!(v["name"], "abc");
        assert_eq!(v["sum"], 3);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = json!({"s": "a\"b\\c\nd\te"});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_has_indentation() {
        let text = to_string_pretty(&json!({"a": [1]})).unwrap();
        assert!(text.contains("\n  \"a\""));
    }

    #[test]
    fn integral_float_keeps_point() {
        let text = to_string(&json!({"x": 2.0})).unwrap();
        assert!(text.contains("2.0"), "{text}");
    }

    #[test]
    fn unicode_escape_parses() {
        let v: Value = from_str("\"\\u0041\"").unwrap();
        assert_eq!(v, "A");
    }
}
