//! Property tests for the scenario plane's compatibility contract: every
//! legacy boolean-axis configuration (`read_after_write`,
//! `analysis_read`, `reorganize`, `check_int`) and the *same* config
//! with its compiled `Scenario` set explicitly produce byte- and
//! wall-identical `RunResult`s — across the three backends, with and
//! without a storage model. The booleans are deprecated spelling, not a
//! second code path.

use amr_proxy_io::amrproxy::{run_simulation, CastroSedovConfig, Engine, RunResult};
use amr_proxy_io::io_engine::{BackendSpec, CodecSpec, ReadSelection};
use amr_proxy_io::iosim::StorageModel;
use proptest::prelude::*;

/// One legacy boolean-axis point.
#[derive(Clone, Debug)]
struct LegacyAxes {
    backend: BackendSpec,
    codec: CodecSpec,
    check_int: u64,
    read_after_write: bool,
    analysis_read: Option<ReadSelection>,
    reorganize: bool,
    timed: bool,
}

fn arb_axes() -> impl Strategy<Value = LegacyAxes> {
    (
        prop_oneof![
            Just(BackendSpec::FilePerProcess),
            Just(BackendSpec::Aggregated(2)),
            Just(BackendSpec::Deferred(1)),
        ],
        prop_oneof![Just(CodecSpec::Identity), Just(CodecSpec::Rle(2.0))],
        prop_oneof![Just(0u64), Just(3), Just(4)],
        prop_oneof![Just(false), Just(true)],
        prop_oneof![
            Just(None),
            Just(Some(ReadSelection::Level(1))),
            Just(Some(ReadSelection::Field("Cell".to_string()))),
            Just(Some(ReadSelection::parse("box:0-1,0-2").unwrap())),
        ],
        prop_oneof![Just(false), Just(true)],
        prop_oneof![Just(false), Just(true)],
    )
        .prop_map(
            |(backend, codec, check_int, read_after_write, analysis_read, reorganize, timed)| {
                LegacyAxes {
                    backend,
                    codec,
                    check_int,
                    read_after_write,
                    analysis_read,
                    reorganize,
                    timed,
                }
            },
        )
}

fn base_config(axes: &LegacyAxes) -> CastroSedovConfig {
    CastroSedovConfig {
        name: "compat".into(),
        engine: Engine::Oracle,
        n_cell: 64,
        max_level: 2,
        max_step: 8,
        plot_int: 2,
        nprocs: 4,
        account_only: true,
        compute_ns_per_cell: 40_000.0,
        backend: axes.backend,
        codec: axes.codec,
        check_int: axes.check_int,
        read_after_write: axes.read_after_write,
        analysis_read: axes.analysis_read.clone(),
        reorganize: axes.reorganize,
        ..Default::default()
    }
}

/// Byte- and wall-identity of two runs: tracker planes, every byte and
/// file column, every wall column, and the burst timeline.
fn assert_identical(a: &RunResult, b: &RunResult) {
    assert_eq!(a.tracker.export(), b.tracker.export(), "write plane");
    assert_eq!(a.tracker.export_reads(), b.tracker.export_reads(), "reads");
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.restarts, b.restarts);
    assert_eq!(a.files_written, b.files_written);
    assert_eq!(a.physical_bytes, b.physical_bytes);
    assert_eq!(a.logical_bytes, b.logical_bytes);
    assert_eq!(a.overhead_bytes, b.overhead_bytes);
    assert_eq!(a.check_bytes, b.check_bytes);
    assert_eq!(a.check_files, b.check_files);
    assert_eq!(a.read_bytes, b.read_bytes);
    assert_eq!(a.physical_read_bytes, b.physical_read_bytes);
    assert_eq!(a.read_files, b.read_files);
    assert_eq!(a.selective_read_bytes, b.selective_read_bytes);
    assert_eq!(
        a.selective_physical_read_bytes,
        b.selective_physical_read_bytes
    );
    assert_eq!(a.selective_read_files, b.selective_read_files);
    assert_eq!(a.reorg_bytes, b.reorg_bytes);
    // Wall identity is exact: the same phase program executes the same
    // clock operations in the same order.
    assert_eq!(a.wall_time, b.wall_time, "wall");
    assert_eq!(a.compute_wall, b.compute_wall);
    assert_eq!(a.plot_wall, b.plot_wall);
    assert_eq!(a.check_wall, b.check_wall);
    assert_eq!(a.read_wall, b.read_wall);
    assert_eq!(a.selective_read_wall, b.selective_read_wall);
    assert_eq!(a.reorg_wall, b.reorg_wall);
    assert_eq!(a.drain_wall, b.drain_wall);
    assert_eq!(a.codec_seconds, b.codec_seconds);
    assert_eq!(a.timeline, b.timeline);
    assert_eq!(a.steps.len(), b.steps.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The compatibility contract (see module docs).
    #[test]
    fn legacy_booleans_and_compiled_scenario_are_identical(axes in arb_axes()) {
        let legacy_cfg = base_config(&axes);
        let compiled = legacy_cfg.effective_scenario();
        // The explicit-scenario twin clears the booleans: the scenario
        // alone must reproduce them.
        let scenario_cfg = CastroSedovConfig {
            scenario: Some(compiled.clone()),
            read_after_write: false,
            analysis_read: None,
            reorganize: false,
            ..legacy_cfg.clone()
        };
        let storage = StorageModel::ideal(2, 5e7);
        let storage_ref = axes.timed.then_some(&storage);
        let legacy = run_simulation(&legacy_cfg, None, storage_ref);
        let scenario = run_simulation(&scenario_cfg, None, storage_ref);
        prop_assert_eq!(&legacy.scenario, &compiled.name());
        prop_assert_eq!(&scenario.scenario, &compiled.name());
        assert_identical(&legacy, &scenario);
    }
}

/// The deterministic corner the sweep above samples: the full
/// backend × {restart, analysis} grid at one timed point each, so a
/// regression names its exact cell.
#[test]
fn boolean_grid_compat_across_backends() {
    let storage = StorageModel::ideal(2, 5e7);
    for backend in [
        BackendSpec::FilePerProcess,
        BackendSpec::Aggregated(2),
        BackendSpec::Deferred(1),
    ] {
        for (read_after_write, analysis) in [
            (false, None),
            (true, None),
            (false, Some(ReadSelection::Level(1))),
            (true, Some(ReadSelection::Level(1))),
        ] {
            let axes = LegacyAxes {
                backend,
                codec: CodecSpec::Identity,
                check_int: 4,
                read_after_write,
                analysis_read: analysis,
                reorganize: false,
                timed: true,
            };
            let legacy_cfg = base_config(&axes);
            let scenario_cfg = CastroSedovConfig {
                scenario: Some(legacy_cfg.effective_scenario()),
                read_after_write: false,
                analysis_read: None,
                reorganize: false,
                ..legacy_cfg.clone()
            };
            let legacy = run_simulation(&legacy_cfg, None, Some(&storage));
            let scenario = run_simulation(&scenario_cfg, None, Some(&storage));
            assert_identical(&legacy, &scenario);
        }
    }
}
