//! Golden-file regression tests for the `Aggregated` backend's per-step
//! index layout and the compression stage's sidecar format.
//!
//! One small, fully deterministic campaign step is serialized through the
//! aggregated backend and compared **byte-exactly** against checked-in
//! fixtures. The index file is the contract readers (and the paper's
//! byte-accounting model) depend on; this pins it against accidental
//! format drift and against optimization-dependent layout bugs (CI runs
//! these under both debug and release).
//!
//! Regenerate fixtures after an *intentional* format change with:
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test --test golden_aggregated_index
//! ```

use amr_proxy_io::amr_mesh::prelude::*;
use amr_proxy_io::io_engine::{BackendSpec, CodecSpec};
use amr_proxy_io::iosim::{IoTracker, MemFs, Vfs};
use amr_proxy_io::plotfile::{write_plotfile_compressed, PlotLevel, PlotfileSpec};
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compares `actual` against the named fixture, or regenerates it when
/// `BLESS_GOLDEN` is set.
fn assert_golden(name: &str, actual: &[u8]) {
    let path = fixture_path(name);
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read(&path).unwrap_or_else(|e| {
        panic!("missing fixture {path:?} ({e}); regenerate with BLESS_GOLDEN=1")
    });
    assert_eq!(
        actual,
        expected.as_slice(),
        "{name} drifted from the checked-in fixture; if the format change \
         is intentional, regenerate with BLESS_GOLDEN=1"
    );
}

/// The deterministic one-step campaign workload: 64^2 cells on 4 ranks,
/// two variables at fixed values, SFC distribution. Everything that
/// reaches the index (paths, offsets, lengths, metadata bytes) is a pure
/// function of this layout.
fn dump_step(codec: CodecSpec) -> MemFs {
    let ba = BoxArray::single(IndexBox::at_origin(IntVect::splat(64))).max_size(16);
    let dm = DistributionMapping::new(&ba, 4, DistributionStrategy::Sfc);
    let mut mf = MultiFab::new(ba, dm, 2, 0);
    mf.set_val(0, 1.25);
    mf.set_val(1, 2.5);
    let spec = PlotfileSpec {
        dir: "/plt00000".to_string(),
        output_counter: 1,
        time: 0.5,
        var_names: vec!["density".into(), "pressure".into()],
        ref_ratio: 2,
        levels: vec![PlotLevel {
            geom: Geometry::unit_square(IntVect::splat(64)),
            mf: &mf,
            level_steps: 4,
        }],
        inputs: vec![("amr.n_cell".into(), "64 64".into())],
    };
    let fs = MemFs::new();
    let tracker = IoTracker::new();
    write_plotfile_compressed(&fs, &tracker, &spec, BackendSpec::Aggregated(2), codec)
        .expect("aggregated dump");
    fs
}

#[test]
fn aggregated_index_layout_is_byte_exact() {
    let fs = dump_step(CodecSpec::Identity);
    let idx = fs
        .read_file("/plt00000/bp00001/md.idx")
        .expect("index exists");
    assert_golden("aggregated_md.idx", &idx);
}

#[test]
fn aggregated_file_set_and_sizes_are_stable() {
    let fs = dump_step(CodecSpec::Identity);
    let mut listing = String::new();
    let mut files = fs.list("/");
    files.sort();
    for f in files {
        listing.push_str(&format!("{} {}\n", fs.file_size(&f).unwrap(), f));
    }
    assert_golden("aggregated_file_set.txt", listing.as_bytes());
}

#[test]
fn compression_sidecar_layout_is_byte_exact() {
    let fs = dump_step(CodecSpec::LossyQuant(8));
    let sidecar = fs
        .read_file("/plt00000/compression_00001.csc")
        .expect("sidecar exists");
    assert_golden("aggregated_quant_sidecar.csc", &sidecar);
}

#[test]
fn compressed_index_records_both_byte_counts() {
    // Not a golden file: a structural check that the quantized index's
    // chunk lines carry physical < logical for every data chunk.
    let fs = dump_step(CodecSpec::LossyQuant(8));
    let idx = String::from_utf8(fs.read_file("/plt00000/bp00001/md.idx").unwrap()).unwrap();
    let mut data_lines = 0;
    for line in idx.lines().filter(|l| l.contains("/data.")) {
        let cols: Vec<&str> = line.split_whitespace().collect();
        let physical: u64 = cols[2].parse().expect("physical len column");
        let logical: u64 = cols[3].parse().expect("logical len column");
        assert!(physical < logical, "chunk must be compressed: {line}");
        data_lines += 1;
    }
    assert!(data_lines >= 4, "one chunk per rank: {idx}");
}
