//! Property-based tests for the multi-tenant storage fabric: solo-tenant
//! equivalence with the legacy per-run storage model across the backend ×
//! codec matrix, fair-share slowdown and throughput conservation for
//! identical tenants, and QoS priority dominance.

use amr_proxy_io::amrproxy::{
    run_campaign_fabric, run_campaign_timed_serial, CastroSedovConfig, Engine,
};
use amr_proxy_io::io_engine::{BackendSpec, CodecSpec};
use amr_proxy_io::iosim::{Fabric, QosPolicy, StorageModel, WriteRequest};
use proptest::prelude::*;

fn oracle_cfg(name: &str, n_cell: i64, max_step: u64, plot_int: u64) -> CastroSedovConfig {
    CastroSedovConfig {
        name: name.into(),
        engine: Engine::Oracle,
        n_cell,
        max_level: 2,
        max_step,
        plot_int,
        nprocs: 4,
        account_only: true,
        compute_ns_per_cell: 40_000.0,
        ..Default::default()
    }
}

/// One burst of `files` equal-sized writes, with per-tenant paths so no
/// two tenants collide on a key.
fn burst(tenant: usize, files: usize, bytes: u64) -> Vec<WriteRequest> {
    (0..files)
        .map(|f| WriteRequest {
            rank: f,
            path: format!("/t{tenant}/f{f}"),
            bytes,
            start: 0.0,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A single tenant on the fabric must reproduce the legacy
    /// model-backed campaign *exactly* — every summary column, across
    /// the full 3-backend × 3-codec matrix, under noisy storage.
    #[test]
    fn solo_fabric_tenant_matches_legacy_model_exactly(
        n_cell in prop_oneof![Just(32i64), Just(64i64)],
        max_step in 4u64..10,
        plot_int in 1u64..4,
        nservers in 1usize..5,
        sigma in 0.0f64..0.4,
        seed in 0u64..1000,
    ) {
        let storage = StorageModel {
            variability_sigma: sigma,
            seed,
            metadata_latency: 1e-4,
            ..StorageModel::ideal(nservers, 5e7)
        };
        for backend in [
            BackendSpec::FilePerProcess,
            BackendSpec::Aggregated(2),
            BackendSpec::Deferred(1),
        ] {
            for codec in [
                CodecSpec::Identity,
                CodecSpec::Rle(2.0),
                CodecSpec::LossyQuant(8),
            ] {
                let cfg = CastroSedovConfig {
                    backend,
                    codec,
                    ..oracle_cfg("solo", n_cell, max_step, plot_int)
                };
                let legacy = run_campaign_timed_serial(std::slice::from_ref(&cfg), &storage);
                let fabric = run_campaign_fabric(&[cfg], &storage, None, &[]);
                prop_assert_eq!(
                    &legacy, &fabric,
                    "{} / {} diverged", backend.name(), codec.name()
                );
                prop_assert_eq!(fabric[0].slowdown, 1.0);
                prop_assert_eq!(fabric[0].solo_wall, fabric[0].wall_time);
            }
        }
    }

    /// N identical bandwidth-bound tenants on one server each slow down
    /// by exactly N, and aggregate throughput is conserved: the makespan
    /// equals total bytes over server bandwidth.
    #[test]
    fn identical_tenants_slow_by_n_and_conserve_throughput(
        n in 2usize..6,
        files in 1usize..5,
        kib in 1u64..64,
    ) {
        let bw = 1e6;
        let model = StorageModel::ideal(1, bw);
        let bytes = kib * 1024;
        let solo = model.simulate_burst(&burst(0, files, bytes)).t_end;
        let fabric = Fabric::new(model);
        let handles: Vec<_> = (0..n).map(|i| fabric.tenant(&format!("t{i}"))).collect();
        let ends: Vec<f64> = std::thread::scope(|s| {
            let joins: Vec<_> = handles
                .into_iter()
                .enumerate()
                .map(|(i, h)| s.spawn(move || h.simulate_burst(&burst(i, files, bytes)).t_end))
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        let makespan = ends.iter().cloned().fold(0.0f64, f64::max);
        for (i, &t_end) in ends.iter().enumerate() {
            prop_assert!(
                (t_end / solo - n as f64).abs() < 1e-9,
                "tenant {i}: shared {t_end} vs solo {solo} (n = {n})"
            );
        }
        let total_bytes = (n * files) as f64 * bytes as f64;
        prop_assert!((total_bytes / makespan / bw - 1.0).abs() < 1e-9);
    }

    /// A strictly prioritized tenant never finishes later than the same
    /// tenant under fair sharing against the same competitor workload.
    #[test]
    fn prioritized_tenant_beats_its_fair_share_wall(
        weight in 2.0f64..16.0,
        files in 1usize..5,
        kib in 1u64..64,
        rival_files in 1usize..7,
    ) {
        let model = StorageModel::ideal(1, 1e6);
        let run_pair = |hi_qos: QosPolicy| -> f64 {
            let fabric = Fabric::new(model);
            let hi = fabric.tenant_with("hi", hi_qos);
            let lo = fabric.tenant("lo");
            std::thread::scope(|s| {
                let jh = s.spawn(move || hi.simulate_burst(&burst(0, files, kib * 1024)).t_end);
                let jl =
                    s.spawn(move || lo.simulate_burst(&burst(1, rival_files, kib * 1024)).t_end);
                let t = jh.join().unwrap();
                jl.join().unwrap();
                t
            })
        };
        let fair = run_pair(QosPolicy::default());
        let prioritized = run_pair(QosPolicy::weighted(weight));
        prop_assert!(
            prioritized <= fair + 1e-9,
            "prioritized {prioritized} must not lose to fair {fair}"
        );
    }
}
