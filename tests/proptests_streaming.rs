//! Backend-equivalence property suite for the in-transit streaming
//! backend (PR-9's pinned invariants):
//!
//! * (a) the tracker's logical planes are byte-identical across all four
//!   backends × three codecs — streaming is indistinguishable from the
//!   storage backends on the logical plane;
//! * (b) a streamed `analyze` selection returns the same decoded chunks
//!   as a storage read of the same step;
//! * (c) streamed analysis touches exactly zero physical read bytes;
//! * (d) the bounded consumer window never exceeds its cap and producer
//!   stall is non-negative;
//! * plus the typed error path: `read_selection` of a step no backend
//!   ever wrote is an `ErrorKind::Unsupported` naming the backend, for
//!   all four backends — never a panic.

use amr_proxy_io::amrproxy::{run_simulation, CastroSedovConfig, Engine};
use amr_proxy_io::io_engine::{
    BackendSpec, CodecSpec, CompressionStage, IoBackend, Payload, Put, ReadSelection, Streaming,
};
use amr_proxy_io::iosim::{IoKey, IoKind, IoTracker, MemFs, Vfs};
use amr_proxy_io::mpi_sim::NetworkModel;
use proptest::prelude::*;

const BACKENDS: [&str; 4] = ["fpp", "agg:2", "deferred", "streaming"];
const CODECS: [&str; 3] = ["identity", "rle:2", "quant:8"];

/// One tracker export row: `(key, kind, bytes, files)`.
type TrackerRow = (IoKey, IoKind, u64, u64);

fn base_config(n_cell: i64, max_step: u64, plot_int: u64, nprocs: usize) -> CastroSedovConfig {
    CastroSedovConfig {
        name: "prop".into(),
        engine: Engine::Oracle,
        n_cell,
        max_step,
        plot_int,
        nprocs,
        account_only: true,
        ..Default::default()
    }
}

/// Writes `puts` as step 1 through `backend` wrapped in `codec`, then
/// reads `sel` back through the same stage (decoded). Returns the read
/// plus the tracker for plane comparisons.
fn write_then_select(
    backend: &str,
    codec: &str,
    fs: &MemFs,
    tracker: &IoTracker,
    puts: &[(u32, Vec<u8>)],
    sel: &ReadSelection,
) -> amr_proxy_io::io_engine::StepRead {
    let inner = BackendSpec::parse(backend)
        .unwrap()
        .build(fs as &dyn Vfs, tracker);
    let mut live = CompressionStage::new(
        inner,
        CodecSpec::parse(codec).unwrap().build(),
        fs as &dyn Vfs,
    );
    live.begin_step(1, "/plt");
    for (task, (level, data)) in puts.iter().enumerate() {
        live.put(Put {
            key: IoKey {
                step: 1,
                level: *level,
                task: task as u32,
            },
            kind: IoKind::Data,
            // Chunks of one level share a logical path, like Cell_D
            // files — exercises multi-chunk path reassembly.
            path: format!("/plt/L{level}"),
            payload: Payload::Bytes(data.clone().into()),
        })
        .unwrap();
    }
    live.end_step().unwrap();
    let read = live.read_selection(1, "/plt", sel).unwrap();
    live.close().unwrap();
    read
}

/// Normalizes a decoded read for order-insensitive comparison:
/// `(level, task, path, logical bytes)` per chunk, sorted.
fn normalize(read: &amr_proxy_io::io_engine::StepRead) -> Vec<(u32, u32, String, Vec<u8>)> {
    let mut rows: Vec<_> = read
        .chunks
        .iter()
        .map(|c| {
            let bytes = match &c.payload {
                Payload::Bytes(b) => b.to_vec(),
                other => panic!("stage must return decoded bytes, got {other:?}"),
            };
            (c.key.level, c.key.task, c.path.clone(), bytes)
        })
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// (a) Logical tracker totals are byte-identical across all four
    /// backends × three codecs for arbitrary small campaigns: neither
    /// the write path's shape (N-to-N, aggregated, staged, streamed)
    /// nor the codec may leak into the logical plane.
    #[test]
    fn logical_planes_are_backend_and_codec_invariant(
        n_cell in (0usize..2).prop_map(|i| [32i64, 48][i]),
        max_step in 4u64..9,
        plot_int in 1u64..4,
        nprocs in 1usize..5,
    ) {
        let mut reference: Option<(Vec<TrackerRow>, u64)> = None;
        for backend in BACKENDS {
            for codec in CODECS {
                let mut cfg = base_config(n_cell, max_step, plot_int, nprocs);
                cfg.backend = BackendSpec::parse(backend).unwrap();
                cfg.codec = CodecSpec::parse(codec).unwrap();
                let r = run_simulation(&cfg, None, None);
                let export = r.tracker.export();
                match &reference {
                    None => reference = Some((export, r.logical_bytes)),
                    Some((ref_export, ref_logical)) => {
                        prop_assert_eq!(
                            &export, ref_export,
                            "tracker plane diverged at {}/{}", backend, codec
                        );
                        prop_assert_eq!(r.logical_bytes, *ref_logical);
                    }
                }
            }
        }
    }

    /// (b) + (c): for arbitrary put sets, codecs, and selections, the
    /// streamed read returns exactly the chunks a storage read of the
    /// same step returns — same keys, same decoded bytes — while its
    /// physical read plane stays at exactly zero.
    #[test]
    fn streamed_selections_match_storage_reads_at_zero_physical_cost(
        puts in prop::collection::vec(
            (0u32..3, prop::collection::vec(0u8..=255, 1..64)),
            1..8,
        ),
        codec_idx in 0usize..3,
        // 3 encodes "no level filter": a Full-step selection.
        level_sel in (0u32..4).prop_map(|v| (v < 3).then_some(v)),
    ) {
        let codec = CODECS[codec_idx];
        let sel = match level_sel {
            Some(l) => ReadSelection::Level(l),
            None => ReadSelection::Full,
        };
        let fs_stored = MemFs::new();
        let t_stored = IoTracker::new();
        let stored = write_then_select("fpp", codec, &fs_stored, &t_stored, &puts, &sel);
        let fs_streamed = MemFs::new();
        let t_streamed = IoTracker::new();
        let streamed =
            write_then_select("streaming", codec, &fs_streamed, &t_streamed, &puts, &sel);

        // (b) Same decoded chunks, bit for bit.
        prop_assert_eq!(normalize(&streamed), normalize(&stored));
        prop_assert_eq!(streamed.stats.logical_bytes, stored.stats.logical_bytes);
        prop_assert_eq!(t_streamed.total_read_bytes(), t_stored.total_read_bytes());
        // Write planes: logical identical, physical zero only streamed.
        prop_assert_eq!(t_streamed.total_bytes(), t_stored.total_bytes());
        prop_assert_eq!(fs_streamed.total_bytes(), 0, "nothing hits the fs");

        // (c) The streamed read plane is physically free...
        prop_assert_eq!(streamed.stats.bytes, 0);
        prop_assert_eq!(streamed.stats.files, 0);
        prop_assert!(streamed.stats.requests.is_empty());
        // ...while the storage read pays for whatever it returned.
        if !stored.chunks.is_empty() {
            prop_assert!(stored.stats.bytes > 0);
        }
    }

    /// (d) For arbitrary window caps, consumer rates, and step sizes,
    /// the bounded window never exceeds its cap and every step's
    /// producer stall is non-negative.
    #[test]
    fn bounded_window_respects_cap_and_stall_is_nonnegative(
        cap in 16u64..4096,
        consumer in 10.0f64..2e6,
        sizes in prop::collection::vec(1usize..2048, 1..12),
    ) {
        let tracker = IoTracker::new();
        let mut b = Streaming::new(
            &tracker,
            NetworkModel::ideal(1e6),
            Some(cap),
            Some(consumer),
        );
        for (i, len) in sizes.iter().enumerate() {
            let step = i as u32 + 1;
            b.begin_step(step, "/");
            b.put(Put {
                key: IoKey { step, level: 0, task: 0 },
                kind: IoKind::Data,
                path: format!("/s{step}"),
                payload: Payload::Bytes(vec![0xA5u8; *len].into()),
            })
            .unwrap();
            let stats = b.end_step().unwrap();
            prop_assert!(stats.window_stall >= 0.0);
            prop_assert!(b.peak_window_bytes() <= cap, "cap breached");
        }
        prop_assert!(b.window_stall() >= 0.0);
        prop_assert!(b.peak_window_bytes() <= cap);
    }
}

/// Satellite 4: `read_selection` against a step that was never written
/// is a typed `Unsupported` error naming the backend — for all four
/// backends, never a panic (the driver propagates it as `io::Error`).
#[test]
fn unwritten_step_reads_are_typed_unsupported_errors_for_every_backend() {
    for spec in BACKENDS {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = BackendSpec::parse(spec)
            .unwrap()
            .build(&fs as &dyn Vfs, &tracker);
        // The backend is live (step 1 written) — step 7 is not.
        b.begin_step(1, "/plt");
        b.put(Put {
            key: IoKey {
                step: 1,
                level: 0,
                task: 0,
            },
            kind: IoKind::Data,
            path: "/plt/L0".into(),
            payload: Payload::Bytes(b"data".to_vec().into()),
        })
        .unwrap();
        b.end_step().unwrap();

        let sel = ReadSelection::Level(1);
        let err = b.read_selection(7, "/plt", &sel).unwrap_err();
        assert_eq!(
            err.kind(),
            std::io::ErrorKind::Unsupported,
            "{spec}: wrong kind"
        );
        let msg = err.to_string();
        let name = b.name();
        assert!(msg.contains(&format!("'{name}'")), "{spec}: {msg}");
        assert!(msg.contains("step 7"), "{spec}: {msg}");
        assert!(msg.contains(&sel.name()), "{spec}: {msg}");
        b.close().unwrap();
    }
}
