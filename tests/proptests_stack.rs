//! Property-based tests across the I/O stack: sizer/writer equivalence,
//! MACSio size semantics, storage-model conservation, and calibration
//! recovery under randomized configurations.

use amr_proxy_io::amr_mesh::prelude::*;
use amr_proxy_io::iosim::{IoKind, IoTracker, MemFs, StorageModel, Vfs, WriteRequest};
use amr_proxy_io::macsio::{self, dump::predicted_dump_bytes, FileMode, Interface, MacsioConfig};
use amr_proxy_io::model::{calibrate_growth, predicted_series};
use amr_proxy_io::plotfile::{
    account_plotfile, write_plotfile, LayoutLevel, PlotLevel, PlotfileLayout, PlotfileSpec,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The size accountant must agree with the real writer on data bytes
    /// for arbitrary (small) grid layouts and rank counts.
    #[test]
    fn sizer_matches_writer_data_bytes(
        n in 8i64..64,
        max in 4i64..32,
        nranks in 1usize..6,
        nvars in 1usize..5,
    ) {
        let geom = Geometry::unit_square(IntVect::splat(n));
        let ba = BoxArray::single(geom.domain).max_size(max);
        let dm = DistributionMapping::new(&ba, nranks, DistributionStrategy::Sfc);
        let mut mf = MultiFab::new(ba.clone(), dm.clone(), nvars, 0);
        for c in 0..nvars {
            mf.set_val(c, 1.0 + c as f64);
        }
        let var_names: Vec<String> = (0..nvars).map(|i| format!("v{i}")).collect();

        let fs = MemFs::with_retention(0);
        let tw = IoTracker::new();
        write_plotfile(&fs, &tw, &PlotfileSpec {
            dir: "/p".into(),
            output_counter: 1,
            time: 0.25,
            var_names: var_names.clone(),
            ref_ratio: 2,
            levels: vec![PlotLevel { geom, mf: &mf, level_steps: 1 }],
            inputs: vec![],
        }).unwrap();

        let ts = IoTracker::new();
        account_plotfile(&ts, &PlotfileLayout {
            dir: "/p".into(),
            output_counter: 1,
            time: 0.25,
            var_names,
            ref_ratio: 2,
            levels: vec![LayoutLevel { geom, ba, dm, level_steps: 1 }],
            inputs: vec![],
        });
        prop_assert_eq!(
            tw.total_bytes_of(IoKind::Data),
            ts.total_bytes_of(IoKind::Data)
        );
    }

    /// MACSio's on-disk bytes per rank stay within the topology-rounding
    /// slack of the nominal request, for any growth/vars/parts setting.
    #[test]
    fn macsio_bytes_track_nominal(
        part_size in 1_000u64..500_000,
        vars in 1usize..4,
        nprocs in 1usize..6,
        growth in 0.99f64..1.05,
        dumps in 1u32..6,
    ) {
        let cfg = MacsioConfig {
            nprocs,
            num_dumps: dumps,
            part_size,
            vars_per_part: vars,
            dataset_growth: growth,
            parallel_file_mode: FileMode::Mif(nprocs),
            ..Default::default()
        };
        let fs = MemFs::with_retention(0);
        let tracker = IoTracker::new();
        let report = macsio::run(&cfg, &fs, &tracker, None).unwrap();
        prop_assert_eq!(report.total_bytes, fs.total_bytes());
        for dump in 0..dumps {
            let nominal = cfg.grown_part_size(dump) * vars as u64;
            let per_task = tracker.bytes_per_task_of(dump + 1, 0, IoKind::Data);
            for &b in per_task.iter().take(nprocs) {
                let ratio = b as f64 / nominal as f64;
                prop_assert!(
                    (1.0..1.7).contains(&ratio),
                    "dump {dump}: {b} vs nominal {nominal} (ratio {ratio})"
                );
            }
        }
    }

    /// The pure size predictor equals the real run for miftmpl, always.
    #[test]
    fn macsio_predictor_is_exact(
        part_size in 500u64..100_000,
        vars in 1usize..4,
        nprocs in 1usize..5,
        avg_parts in 1.0f64..2.5,
        growth in 0.995f64..1.03,
    ) {
        let cfg = MacsioConfig {
            nprocs,
            num_dumps: 3,
            part_size,
            vars_per_part: vars,
            avg_num_parts: avg_parts,
            dataset_growth: growth,
            interface: Interface::Miftmpl,
            ..Default::default()
        };
        let fs = MemFs::with_retention(0);
        let tracker = IoTracker::new();
        let report = macsio::run(&cfg, &fs, &tracker, None).unwrap();
        for dump in 0..3 {
            prop_assert_eq!(
                predicted_dump_bytes(&cfg, dump),
                report.bytes_per_dump[dump as usize]
            );
        }
    }

    /// Storage simulation conserves work: every request finishes, at or
    /// after the time implied by the aggregate server bandwidth.
    #[test]
    fn storage_burst_conservation(
        nreqs in 1usize..40,
        nservers in 1usize..8,
        bytes in 1_000u64..1_000_000,
    ) {
        let model = StorageModel::ideal(nservers, 1e6);
        let reqs: Vec<WriteRequest> = (0..nreqs)
            .map(|i| WriteRequest {
                rank: i,
                path: format!("/f{i}"),
                bytes,
                start: 0.0,
            })
            .collect();
        let result = model.simulate_burst(&reqs);
        prop_assert_eq!(result.finish.len(), nreqs);
        let total = (nreqs as u64 * bytes) as f64;
        // Lower bound: the whole system at full tilt.
        let t_min = total / (1e6 * nservers as f64);
        // Upper bound: everything serialized on one server.
        let t_max = total / 1e6 + 1e-9;
        prop_assert!(result.t_end >= t_min * 0.999, "{} < {}", result.t_end, t_min);
        prop_assert!(result.t_end <= t_max * 1.001, "{} > {}", result.t_end, t_max);
        for &f in &result.finish {
            prop_assert!(f > 0.0 && f <= result.t_end + 1e-12);
        }
    }

    /// Golden-section calibration recovers a known growth factor from a
    /// synthetic target, for random base configurations.
    #[test]
    fn calibration_recovers_growth(
        nprocs in 1usize..8,
        part_size in 10_000u64..300_000,
        truth_growth in 1.0f64..1.05,
        dumps in 6u32..20,
    ) {
        let truth = MacsioConfig {
            nprocs,
            num_dumps: dumps,
            part_size,
            dataset_growth: truth_growth,
            ..Default::default()
        };
        let target: Vec<f64> = predicted_series(&truth).iter().map(|&b| b as f64).collect();
        let base = MacsioConfig { dataset_growth: 1.0, ..truth.clone() };
        let cal = calibrate_growth(&base, &target, 0.99, 1.08, 40);
        prop_assert!(
            (cal.dataset_growth - truth_growth).abs() < 2e-3,
            "found {} expected {}",
            cal.dataset_growth,
            truth_growth
        );
    }
}
