//! Cross-crate integration tests: the full pipeline from the hydro (or
//! oracle) hierarchy through plotfile writing, byte tracking, model
//! fitting, and the MACSio proxy.

use amr_proxy_io::amrproxy::{
    case4_hydro_scaled, compare_with_macsio, run_simulation, CastroSedovConfig, Engine,
};
use amr_proxy_io::iosim::{IoKind, MemFs, StorageModel, Vfs};
use amr_proxy_io::model::linear_fit;

fn small(engine: Engine, n: i64, max_level: usize, steps: u64) -> CastroSedovConfig {
    CastroSedovConfig {
        name: format!("it_{engine:?}_{n}_{max_level}"),
        engine,
        n_cell: n,
        max_level,
        max_step: steps,
        plot_int: 2,
        nprocs: 4,
        grid: amr_proxy_io::amr_mesh::GridParams {
            ref_ratio: 2,
            blocking_factor: 8,
            max_grid_size: 32,
            n_error_buf: 2,
            grid_eff: 0.7,
        },
        ctrl: amr_proxy_io::hydro::TimestepControl {
            cfl: 0.5,
            init_shrink: 0.5,
            change_max: 1.4,
        },
        account_only: true,
        ..Default::default()
    }
}

#[test]
fn hydro_and_oracle_engines_agree_on_structure() {
    // Same configuration through both engines: identical L0 accounting
    // (L0 bytes depend only on n_cell / chopping / variable count), and
    // refined levels in the same order of magnitude.
    let rh = run_simulation(&small(Engine::Hydro, 64, 2, 16), None, None);
    let ro = run_simulation(&small(Engine::Oracle, 64, 2, 16), None, None);
    assert_eq!(rh.outputs, ro.outputs);
    // Compare L0 *data* bytes: metadata at level 0 includes the Header,
    // which lists every level's grids and legitimately differs.
    for step in rh.tracker.steps() {
        let h: u64 = rh
            .tracker
            .bytes_per_task_of(step, 0, IoKind::Data)
            .iter()
            .sum();
        let o: u64 = ro
            .tracker
            .bytes_per_task_of(step, 0, IoKind::Data)
            .iter()
            .sum();
        assert_eq!(h, o, "L0 data accounting must be engine-independent");
    }
    // Both refine the blast.
    assert!(rh.tracker.levels().len() >= 2);
    assert!(ro.tracker.levels().len() >= 2);
}

#[test]
fn plotfile_bytes_flow_into_model_samples() {
    let r = run_simulation(&small(Engine::Oracle, 128, 2, 20), None, None);
    let xy = r.xy_series();
    assert_eq!(xy.points.len() as u32, r.outputs);
    // Eq. (1): x spacing equals ncells(L0).
    let dx = xy.points[1].x - xy.points[0].x;
    assert_eq!(dx, (128 * 128) as f64);
    // The cumulative series regresses with a positive slope.
    let fit = linear_fit(&xy.xs(), &xy.ys());
    assert!(fit.slope > 0.0);
    assert!(fit.r2 > 0.9);
}

#[test]
fn real_writes_match_accounting_through_the_full_stack() {
    let mut cfg = small(Engine::Hydro, 64, 1, 8);
    cfg.account_only = false;
    let fs = MemFs::with_retention(64);
    let r = run_simulation(&cfg, Some(&fs), None);
    // Every accounted byte exists in the filesystem.
    assert_eq!(r.tracker.total_bytes(), fs.total_bytes());
    assert_eq!(r.tracker.total_files() as usize, fs.nfiles());
    // The N-to-N structure of Fig. 2 is on disk.
    let files = fs.list("/");
    assert!(files.iter().any(|f| f.contains("plt00000/Header")));
    assert!(files.iter().any(|f| f.contains("Level_0/Cell_D_00000")));
}

#[test]
fn end_to_end_proxy_quality_on_hydro_engine() {
    // The paper's whole point, on the real solver: a calibrated MACSio
    // run reproduces the per-step byte series of the AMR run.
    let cfg = case4_hydro_scaled(0.5, 2);
    let amr = run_simulation(&cfg, None, None);
    let cmp = compare_with_macsio(&amr, 2);
    assert!(cmp.mape_percent < 15.0, "MAPE {}", cmp.mape_percent);
    assert!(cmp.final_error.abs() < 0.10, "final {}", cmp.final_error);
    assert!(cmp.calibration.f > 5.0, "f {}", cmp.calibration.f);
}

#[test]
fn burst_timing_is_deterministic() {
    let cfg = small(Engine::Oracle, 128, 2, 12);
    let storage = StorageModel::summit_alpine(0.05);
    let a = run_simulation(&cfg, None, Some(&storage));
    let b = run_simulation(&cfg, None, Some(&storage));
    assert_eq!(a.timeline, b.timeline, "same seed, same timeline");
    assert_eq!(a.wall_time, b.wall_time);
    assert!(a.timeline.len() as u32 == a.outputs);
}

#[test]
fn metadata_and_data_are_tracked_separately() {
    let r = run_simulation(&small(Engine::Oracle, 64, 2, 8), None, None);
    let data = r.tracker.total_bytes_of(IoKind::Data);
    let meta = r.tracker.total_bytes_of(IoKind::Metadata);
    assert!(data > 0 && meta > 0);
    // Data dominates; metadata is a small but nonzero share (headers,
    // Cell_H, job_info).
    assert!(data > 10 * meta, "data {data} meta {meta}");
}

#[test]
fn tracker_step_keys_are_output_counters_not_sim_steps() {
    let mut cfg = small(Engine::Oracle, 64, 1, 20);
    cfg.plot_int = 5;
    let r = run_simulation(&cfg, None, None);
    // Dumps at step 0, 5, 10, 15, 20 -> counters 1..=5.
    assert_eq!(r.tracker.steps(), vec![1, 2, 3, 4, 5]);
}
