//! Property tests for the compression stage's byte-accounting contract:
//! logical `(step, level, task)` tracker totals are invariant across the
//! full backend × codec matrix, physical payload bytes never exceed
//! logical bytes — with equality exactly on the identity codec for the
//! modeled (account-only) path — and the read plane round-trips:
//! `read_step(write(x)) == x` per logical path for every backend × codec
//! combination.

use amr_proxy_io::amrproxy::{run_simulation, CastroSedovConfig, Engine};
use amr_proxy_io::io_engine::{BackendSpec, Codec, CodecContext, CodecSpec, Payload, Put, Rle};
use amr_proxy_io::iosim::{IoKey, IoKind, IoTracker, MemFs, Vfs};
use amr_proxy_io::macsio::{self, FileMode, MacsioConfig, RunMode};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The PackBits encoder round-trips arbitrary byte streams losslessly.
    /// A small alphabet forces run/literal boundary interactions (the
    /// 128-caps) that uniform random bytes almost never produce.
    #[test]
    fn rle_round_trips_arbitrary_bytes(
        noise in prop::collection::vec(0u8..=255, 0..2048),
        runs in prop::collection::vec(0u8..=2, 0..2048),
    ) {
        let codec = Rle::default();
        let ctx = CodecContext { level: 0, kind: IoKind::Data, path: "/f" };
        for data in [noise, runs] {
            let encoded = codec.encode(&data, &ctx);
            prop_assert_eq!(Rle::decode(&encoded), data);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// MACSio (materialized bytes): the tracker export is byte-identical
    /// across all 3 backends x 3 codecs, and physical payloads never
    /// expand.
    #[test]
    fn macsio_tracker_invariant_across_backend_codec_matrix(
        nprocs in 1usize..6,
        dumps in 1u32..4,
        part_size in 1_000u64..40_000,
        agg_ratio in 1usize..5,
        quant_bits in 2u8..13,
    ) {
        let cfg = MacsioConfig {
            nprocs,
            num_dumps: dumps,
            part_size,
            parallel_file_mode: FileMode::Mif(nprocs),
            ..Default::default()
        };
        let backends = [
            BackendSpec::FilePerProcess,
            BackendSpec::Aggregated(agg_ratio),
            BackendSpec::Deferred(1),
        ];
        let codecs = [
            CodecSpec::Identity,
            CodecSpec::Rle(2.0),
            CodecSpec::LossyQuant(quant_bits),
        ];
        let mut baseline: Option<Vec<_>> = None;
        for backend in backends {
            for codec in codecs {
                let cfg = MacsioConfig { io_backend: backend, compression: codec, ..cfg.clone() };
                let fs = MemFs::new();
                let tracker = IoTracker::new();
                let report = macsio::run(&cfg, &fs, &tracker, None).expect("macsio run");
                let label = format!("{}/{}", backend.name(), codec.name());

                // (1) Logical tracker totals: backend- and codec-invariant.
                let export = tracker.export();
                prop_assert!(!export.is_empty());
                match &baseline {
                    None => baseline = Some(export),
                    Some(b) => prop_assert_eq!(b, &export, "tracker drift in {}", label),
                }

                // (2) Physical payload bytes <= logical bytes, equality on
                // identity (payload = total minus declared bookkeeping).
                let payload = report.total_bytes - report.overhead_bytes;
                prop_assert!(
                    payload <= report.logical_bytes,
                    "{}: payload {} > logical {}", label, payload, report.logical_bytes
                );
                if codec == CodecSpec::Identity {
                    prop_assert_eq!(payload, report.logical_bytes, "identity must be 1:1 in {}", label);
                    prop_assert_eq!(report.codec_seconds, 0.0);
                } else {
                    prop_assert!(report.codec_seconds > 0.0, "{}: cpu cost missing", label);
                }
                // LossyQuant payloads are large f64 streams: always strictly
                // compressed.
                if let CodecSpec::LossyQuant(_) = codec {
                    prop_assert!(payload < report.logical_bytes, "{}", label);
                }
                // (3) The filesystem agrees with the report.
                prop_assert_eq!(report.total_bytes, fs.total_bytes());
            }
        }
    }
}

/// `nvals` f64 values on the 8-bit quantization lattice: integers in
/// [0, 255] with 0 and 255 anchored per 256-value block, so `quant:8`
/// stores them exactly (scale = 1.0, q = v) and even the lossy codec
/// round-trips bit-exactly.
fn lattice_field(nvals: usize, salt: u32) -> Vec<u8> {
    let mut vals: Vec<f64> = (0..nvals)
        .map(|i| ((i as u32).wrapping_mul(37).wrapping_add(salt * 13) % 256) as f64)
        .collect();
    for block in vals.chunks_mut(256) {
        block[0] = 0.0;
        let last = block.len() - 1;
        block[last] = 255.0;
    }
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The read plane: for every backend × codec combination, reading a
    /// written step back returns byte-identical logical payloads —
    /// `read_step(write(x)) == x` per logical path. Fields are lattice-
    /// valued f64s so the property is byte-exact even for the lossy
    /// quantizer; shared paths (MIF-style groups) exercise chunk
    /// reassembly order.
    #[test]
    fn read_back_round_trips_across_backend_codec_matrix(
        ntasks in 1u32..7,
        nvals in 1usize..700,
        group in 1u32..4,
        agg_ratio in 1usize..5,
        steps in 1u32..3,
    ) {
        let backends = [
            BackendSpec::FilePerProcess,
            BackendSpec::Aggregated(agg_ratio),
            BackendSpec::Deferred(1),
        ];
        let codecs = [
            CodecSpec::Identity,
            CodecSpec::Rle(2.0),
            CodecSpec::LossyQuant(8),
        ];
        for backend in backends {
            for codec in codecs {
                let fs = MemFs::new();
                let tracker = IoTracker::new();
                let mut stack = backend.build_with_codec(codec, &fs as &dyn Vfs, &tracker);
                let label = format!("{}/{}", backend.name(), codec.name());
                for step in 1..=steps {
                    // Logical reference: path -> concatenated logical bytes.
                    let mut expected: Vec<(String, Vec<u8>)> = Vec::new();
                    stack.begin_step(step, "/plt");
                    for task in 0..ntasks {
                        // Tasks share group files MIF-style.
                        let path = format!("/plt/s{step}/g{:03}", task / group);
                        let data = lattice_field(nvals, task + step);
                        match expected.iter_mut().find(|(p, _)| *p == path) {
                            Some((_, acc)) => acc.extend_from_slice(&data),
                            None => expected.push((path.clone(), data.clone())),
                        }
                        stack.put(Put {
                            key: IoKey { step, level: task % 3, task },
                            kind: IoKind::Data,
                            path,
                            payload: Payload::Bytes(data.into()),
                        }).expect("put");
                    }
                    stack.put(Put {
                        key: IoKey { step, level: 0, task: 0 },
                        kind: IoKind::Metadata,
                        path: format!("/plt/s{step}/hdr"),
                        payload: Payload::Bytes(vec![b'h'; 100].into()),
                    }).expect("meta put");
                    stack.end_step().expect("end_step");

                    let read = stack.read_step(step, "/plt").expect("read_step");
                    for (path, data) in &expected {
                        let back = read.logical_content(path);
                        prop_assert_eq!(
                            back.as_ref(),
                            Some(data),
                            "restart bytes differ for {} in {}", path, label
                        );
                    }
                    prop_assert_eq!(
                        read.logical_content(&format!("/plt/s{step}/hdr")),
                        Some(vec![b'h'; 100]),
                        "metadata round trip in {}", label
                    );
                    // The read plane records logical bytes, codec- and
                    // backend-invariantly.
                    let logical: u64 =
                        expected.iter().map(|(_, d)| d.len() as u64).sum::<u64>() + 100;
                    prop_assert_eq!(read.stats.logical_bytes, logical, "{}", label);
                }
                prop_assert_eq!(
                    tracker.total_read_bytes(),
                    tracker.total_bytes(),
                    "full read-back equals full write in {}", label
                );
                stack.close().expect("close");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// MACSio wr-mode: the read phase's logical totals equal the write
    /// totals for every backend (lossless codec), and the report's read
    /// accounting is consistent.
    #[test]
    fn macsio_write_read_mode_round_trips(
        nprocs in 1usize..5,
        dumps in 1u32..3,
        part_size in 1_000u64..20_000,
        agg_ratio in 1usize..4,
    ) {
        for backend in [
            BackendSpec::FilePerProcess,
            BackendSpec::Aggregated(agg_ratio),
            BackendSpec::Deferred(1),
        ] {
            let cfg = MacsioConfig {
                nprocs,
                num_dumps: dumps,
                part_size,
                io_backend: backend,
                compression: CodecSpec::Rle(2.0),
                mode: RunMode::WriteRead,
                ..Default::default()
            };
            let fs = MemFs::new();
            let tracker = IoTracker::new();
            let report = macsio::run(&cfg, &fs, &tracker, None).expect("macsio run");
            prop_assert_eq!(tracker.total_read_bytes(), tracker.total_bytes());
            prop_assert_eq!(report.read_bytes, report.logical_bytes);
            prop_assert!(report.physical_read_bytes <= report.total_bytes + report.read_bytes);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Account-only AMR runs (the oracle path, size-only payloads): the
    /// Eq. (1)/(2) series is invariant across the matrix and the modeled
    /// physical volume satisfies `physical <= logical` with equality iff
    /// the codec is identity.
    #[test]
    fn oracle_series_invariant_and_sizes_modeled(
        n_cell in prop_oneof![Just(32i64), Just(64i64)],
        nprocs in 1usize..5,
        max_step in 2u64..7,
        agg_ratio in 1usize..4,
    ) {
        let base = CastroSedovConfig {
            name: "prop".into(),
            engine: Engine::Oracle,
            n_cell,
            max_level: 2,
            max_step,
            plot_int: 2,
            nprocs,
            account_only: true,
            ..Default::default()
        };
        let backends = [
            BackendSpec::FilePerProcess,
            BackendSpec::Aggregated(agg_ratio),
            BackendSpec::Deferred(1),
        ];
        let codecs = [
            CodecSpec::Identity,
            CodecSpec::Rle(2.0),
            CodecSpec::LossyQuant(8),
        ];
        let mut baseline: Option<Vec<(f64, f64)>> = None;
        for backend in backends {
            for codec in codecs {
                let cfg = CastroSedovConfig { backend, codec, ..base.clone() };
                let r = run_simulation(&cfg, None, None);
                let label = format!("{}/{}", backend.name(), codec.name());
                let series: Vec<(f64, f64)> =
                    r.xy_series().points.iter().map(|p| (p.x, p.y)).collect();
                match &baseline {
                    None => baseline = Some(series),
                    Some(b) => prop_assert_eq!(b, &series, "series drift in {}", label),
                }
                let payload = r.physical_bytes - r.overhead_bytes;
                if codec == CodecSpec::Identity {
                    prop_assert_eq!(payload, r.logical_bytes, "identity 1:1 in {}", label);
                } else {
                    // Modeled ratios are > 1 on every dump: strictly less.
                    prop_assert!(
                        payload < r.logical_bytes,
                        "{}: payload {} !< logical {}", label, payload, r.logical_bytes
                    );
                }
            }
        }
    }
}
