//! Backward compatibility of the `RunSummary` wire format: summary blobs
//! serialized before the machine-room tenancy columns existed — and ones
//! from after tenancy but before the network-plane columns — must still
//! deserialize, with the new fields landing on their defaults, and a
//! `runs.jsonl` mixing generations must replay through `ResultsStore`.

use amr_proxy_io::amrproxy::store::STORE_SCHEMA;
use amr_proxy_io::amrproxy::{
    run_campaign_timed_serial, CastroSedovConfig, Engine, ResultsStore, RunSummary,
};
use amr_proxy_io::io_engine::BackendSpec;
use amr_proxy_io::iosim::StorageModel;
use serde_json::Value;

/// A real summary blob captured before the tenancy columns were added
/// (checked in, not regenerated — the point is that *old* bytes parse).
const PRE_TENANCY_BLOB: &str = include_str!("fixtures/run_summary_pre_tenancy.json");

/// A summary blob captured after the tenancy columns but before the
/// network plane (`net_bytes` / `net_wall` / `window_stall`) existed.
const PRE_STREAMING_BLOB: &str = include_str!("fixtures/run_summary_pre_streaming.json");

#[test]
fn pre_tenancy_summary_blob_still_deserializes() {
    let v: Value = serde_json::from_str(PRE_TENANCY_BLOB).expect("fixture is valid JSON");
    for field in [
        "tenant",
        "tenants",
        "solo_wall",
        "slowdown",
        "contention_stall",
        "throttle_stall",
        "staging_wait",
    ] {
        assert!(
            v.get(field).is_none(),
            "fixture must predate the tenancy column `{field}`"
        );
    }
    let s: RunSummary = serde_json::from_str(PRE_TENANCY_BLOB).expect("old blob deserializes");
    assert_eq!(s.name, "pre_tenancy_fixture");
    assert_eq!(s.n_cell, 64);
    assert!(s.restart, "fixture captured a read-after-write run");
    assert!(s.wall_time > 0.0);
    // The missing tenancy columns land on the serde defaults.
    assert_eq!(s.tenant, 0);
    assert_eq!(s.tenants, 0);
    assert_eq!(s.solo_wall, 0.0);
    assert_eq!(s.slowdown, 0.0);
    assert_eq!(s.contention_stall, 0.0);
    assert_eq!(s.throttle_stall, 0.0);
    assert_eq!(s.staging_wait, 0.0);
}

#[test]
fn pre_streaming_summary_blob_still_deserializes() {
    let v: Value = serde_json::from_str(PRE_STREAMING_BLOB).expect("fixture is valid JSON");
    assert!(
        v.get("staging_wait").is_some(),
        "fixture postdates the tenancy columns"
    );
    for field in ["net_bytes", "net_wall", "window_stall"] {
        assert!(
            v.get(field).is_none(),
            "fixture must predate the network column `{field}`"
        );
    }
    let s: RunSummary = serde_json::from_str(PRE_STREAMING_BLOB).expect("old blob deserializes");
    assert_eq!(s.name, "pre_streaming_fixture");
    assert_eq!(s.tenants, 1, "tenancy columns parse as written");
    assert_eq!(s.slowdown, 1.0);
    // The missing network columns land on the serde defaults.
    assert_eq!(s.net_bytes, 0);
    assert_eq!(s.net_wall, 0.0);
    assert_eq!(s.window_stall, 0.0);
}

#[test]
fn mixed_generation_log_replays_through_the_store() {
    // A `runs.jsonl` whose first record was written by a pre-streaming
    // writer and whose second comes from a current streamed run: `open`
    // must replay both, and queries must see the old row's network
    // columns as zero rather than rejecting the log.
    let dir = std::env::temp_dir().join(format!("amrproxy_summary_compat_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let old_record = serde_json::to_string(&serde_json::json!({
        "schema": STORE_SCHEMA,
        "cell": "old",
        "summary": serde_json::from_str::<Value>(PRE_STREAMING_BLOB).unwrap(),
    }))
    .unwrap();
    std::fs::write(dir.join("runs.jsonl"), format!("{old_record}\n")).unwrap();

    let cfg = CastroSedovConfig {
        name: "streamed".into(),
        engine: Engine::Oracle,
        n_cell: 32,
        max_step: 4,
        plot_int: 2,
        nprocs: 2,
        account_only: true,
        backend: BackendSpec::parse("streaming").unwrap(),
        ..Default::default()
    };
    let storage = StorageModel::ideal(2, 5e7);
    let new = run_campaign_timed_serial(&[cfg], &storage).remove(0);
    {
        let mut store = ResultsStore::open(&dir).expect("store opens over the old log");
        assert_eq!(store.len(), 1, "the pre-streaming record replayed");
        store.append("new", &new).unwrap();
    }

    // Reopen: both generations replay from disk.
    let store = ResultsStore::open(&dir).expect("mixed log replays");
    assert_eq!(store.len(), 2);
    let old = store.get("old").remove(0);
    assert_eq!(old.name, "pre_streaming_fixture");
    assert_eq!(old.net_bytes, 0, "defaulted on the old row");
    let replayed = store.get("new").remove(0);
    assert_eq!(replayed, new, "the streamed row round-trips the log");
    assert!(replayed.net_bytes > 0, "the new generation prices the link");
    let net = store.query().numbers("net_bytes");
    assert_eq!(net.len(), 1, "only the streamed row carries the column");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stripping_tenancy_columns_from_a_fresh_summary_still_parses() {
    // Forward-looking guard independent of the checked-in fixture: take
    // a current summary, drop the tenancy keys as an old writer would
    // never have emitted them, and require the blob to round-trip.
    let cfg = CastroSedovConfig {
        name: "strip".into(),
        engine: Engine::Oracle,
        n_cell: 32,
        max_step: 4,
        plot_int: 2,
        nprocs: 2,
        account_only: true,
        ..Default::default()
    };
    let storage = StorageModel::ideal(2, 5e7);
    let full = run_campaign_timed_serial(&[cfg], &storage).remove(0);
    let mut v = serde_json::to_value(&full);
    let tenancy = [
        "tenant",
        "tenants",
        "solo_wall",
        "slowdown",
        "contention_stall",
        "throttle_stall",
        "staging_wait",
    ];
    if let Value::Object(entries) = &mut v {
        entries.retain(|(k, _)| !tenancy.contains(&k.as_str()));
    }
    let stripped: RunSummary =
        serde_json::from_str(&serde_json::to_string(&v).unwrap()).expect("stripped blob parses");
    // Everything except the tenancy columns survives the round trip.
    assert_eq!(stripped.wall_time, full.wall_time);
    assert_eq!(stripped.series, full.series);
    assert_eq!(stripped.physical_bytes, full.physical_bytes);
    assert_eq!(stripped.tenants, 0, "defaulted, not copied");
}

#[test]
fn current_summary_round_trips_with_tenancy_columns() {
    let cfg = CastroSedovConfig {
        name: "rt".into(),
        engine: Engine::Oracle,
        n_cell: 32,
        max_step: 4,
        plot_int: 2,
        nprocs: 2,
        account_only: true,
        ..Default::default()
    };
    let storage = StorageModel::ideal(2, 5e7);
    let full = run_campaign_timed_serial(&[cfg], &storage).remove(0);
    let json = serde_json::to_string(&full).unwrap();
    let back: RunSummary = serde_json::from_str(&json).unwrap();
    assert_eq!(back, full);
    assert_eq!(back.tenants, 1);
    assert_eq!(back.slowdown, 1.0);
}
