//! Property tests for the selection-driven read plane: for any workload
//! and any selection, `read_selection` returns *exactly* the chunks of a
//! full-step read for which the selection predicate holds — across the
//! whole backend × codec × {raw, reorganized} cube — and the physical
//! bytes fetched never exceed the full read's. Plus deterministic edge
//! cases: empty selections, boxes touching no chunks, selections on
//! account-only (modeled) steps, and selections through the lossy
//! quantizer.

use amr_proxy_io::io_engine::{
    BackendSpec, ChunkRead, CodecSpec, IoBackend, Payload, Put, ReadSelection, Reorganizer,
    StepRead,
};
use amr_proxy_io::iosim::{IoKey, IoKind, IoTracker, MemFs, Vfs};
use proptest::prelude::*;

const FIELDS: [&str; 3] = ["density", "pressure", "velocity"];

/// Canonical identity of a chunk: `(step, level, task, is_meta, path)`.
type ChunkId = (u32, u32, u32, u8, String);
/// Sorted `(identity, payload)` view of a read, for set comparison.
type Contents = Vec<(ChunkId, Vec<u8>)>;

/// Writes a synthetic AMR-ish step (per-field paths, multiple levels and
/// tasks) through the given stack; returns the backend for reading.
#[allow(clippy::too_many_arguments)] // one knob per workload axis
fn write_step<'a>(
    fs: &'a MemFs,
    tracker: &'a IoTracker,
    backend: BackendSpec,
    codec: CodecSpec,
    nlevels: u32,
    ntasks: u32,
    values_per_chunk: u32,
    account_only: bool,
) -> Box<dyn IoBackend + 'a> {
    let mut b = backend.build_with_codec(codec, fs as &dyn Vfs, tracker);
    b.begin_step(1, "/plt");
    b.create_dir_all("/plt").unwrap();
    for level in 0..nlevels {
        for task in 0..ntasks {
            for (fi, field) in FIELDS.iter().enumerate() {
                let payload = if account_only {
                    Payload::Size(values_per_chunk as u64 * 8)
                } else {
                    Payload::Bytes(
                        (0..values_per_chunk)
                            .flat_map(|i| {
                                ((i + task * 7 + level * 31 + fi as u32) as f64 * 0.5).to_le_bytes()
                            })
                            .collect::<Vec<u8>>()
                            .into(),
                    )
                };
                b.put(Put {
                    key: IoKey {
                        step: 1,
                        level,
                        task,
                    },
                    kind: IoKind::Data,
                    path: format!("/plt/L{level}/{field}_{task:05}"),
                    payload,
                })
                .unwrap();
            }
        }
    }
    b.put(Put {
        key: IoKey {
            step: 1,
            level: 0,
            task: 0,
        },
        kind: IoKind::Metadata,
        path: "/plt/Header".to_string(),
        payload: if account_only {
            Payload::Size(300)
        } else {
            Payload::Bytes(vec![b'h'; 300].into())
        },
    })
    .unwrap();
    b.end_step().unwrap();
    b
}

/// Canonical multiset view of a read: `(key, kind, path) -> payload`,
/// sorted (backends may order layouts differently; content must agree).
fn contents(read: &StepRead) -> Contents {
    let mut v: Vec<_> = read
        .chunks
        .iter()
        .map(|c| {
            let bytes = match &c.payload {
                Payload::Bytes(b) => b.to_vec(),
                Payload::Size(n) => format!("size:{n}").into_bytes(),
                other => panic!("undecoded payload in read: {other:?}"),
            };
            (
                (
                    c.key.step,
                    c.key.level,
                    c.key.task,
                    matches!(c.kind, IoKind::Metadata) as u8,
                    c.path.clone(),
                ),
                bytes,
            )
        })
        .collect();
    v.sort();
    v
}

fn filtered(full: &StepRead, sel: &ReadSelection) -> Contents {
    let subset = StepRead {
        chunks: full
            .chunks
            .iter()
            .filter(|c| sel.matches(&c.key, &c.path))
            .cloned()
            .collect::<Vec<ChunkRead>>(),
        ..StepRead::default()
    };
    contents(&subset)
}

const BACKENDS: [BackendSpec; 3] = [
    BackendSpec::FilePerProcess,
    BackendSpec::Aggregated(2),
    BackendSpec::Deferred(1),
];
const CODECS: [CodecSpec; 3] = [
    CodecSpec::Identity,
    CodecSpec::Rle(2.0),
    CodecSpec::LossyQuant(8),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Selection reads equal the matching slice of a full read, for the
    /// whole backend × codec × {raw, reorganized} cube, materialized and
    /// account-only alike.
    #[test]
    fn selection_equals_filtered_full_read_across_the_cube(
        nlevels in 1u32..4,
        ntasks in 1u32..5,
        values in 16u32..200,
        account_only in prop_oneof![Just(false), Just(true)],
        sel_pick in 0usize..5,
        sel_level in 0u32..4,
        sel_task in 0u32..5,
    ) {
        let sel = match sel_pick {
            0 => ReadSelection::Full,
            1 => ReadSelection::Level(sel_level),
            2 => ReadSelection::Field(FIELDS[sel_level as usize % 3].to_string()),
            3 => ReadSelection::parse(&format!(
                "box:0-{sel_level},{}-{}", sel_task / 2, sel_task)).unwrap(),
            _ => ReadSelection::Field("no_such_field".to_string()),
        };
        for backend in BACKENDS {
            for codec in CODECS {
                let fs = MemFs::new();
                let tracker = IoTracker::new();
                let mut b = write_step(
                    &fs, &tracker, backend, codec, nlevels, ntasks, values, account_only,
                );
                let full = b.read_step(1, "/plt").unwrap();
                let label = format!("{}/{}/{}", backend.name(), codec.name(), sel.name());

                // Raw layout.
                let got = b.read_selection(1, "/plt", &sel).unwrap();
                prop_assert_eq!(contents(&got), filtered(&full, &sel), "raw {}", &label);
                prop_assert!(got.stats.bytes <= full.stats.bytes, "raw bytes {}", &label);
                prop_assert!(got.stats.files <= full.stats.files, "raw files {}", &label);

                // Reorganized layout returns the same chunk set.
                let mut reorg = Reorganizer::new(&fs as &dyn Vfs, &tracker, codec);
                reorg.reorganize(b.as_mut(), 1, "/plt").unwrap();
                let opt = reorg.read_selection(1, &sel).unwrap();
                prop_assert_eq!(contents(&opt), filtered(&full, &sel), "reorg {}", &label);
            }
        }
    }
}

// ---------------------------------------------------------------- edges

/// An empty selection returns no chunks and fetches no data; only
/// index-bearing layouts pay the index fetch that discovered emptiness.
#[test]
fn empty_selection_fetches_no_data() {
    for backend in BACKENDS {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = write_step(&fs, &tracker, backend, CodecSpec::Identity, 2, 3, 32, false);
        let sel = ReadSelection::Level(99);
        let read = b.read_selection(1, "/plt", &sel).unwrap();
        assert!(read.chunks.is_empty(), "{}", backend.name());
        assert_eq!(read.stats.logical_bytes, 0);
        assert_eq!(tracker.total_read_bytes(), 0, "read plane untouched");
        match backend {
            BackendSpec::Aggregated(_) => {
                // The monolithic index was consulted (and priced).
                assert_eq!(read.stats.files, 1, "index only");
                assert!(read.stats.bytes > 0);
            }
            _ => {
                // The manifest lives with the writer: nothing opens.
                assert_eq!(read.stats.files, 0, "{}", backend.name());
                assert_eq!(read.stats.bytes, 0);
                assert!(read.stats.requests.is_empty());
            }
        }
    }
}

/// A key box that intersects no written chunk behaves as empty, on the
/// raw and the reorganized layout alike.
#[test]
fn box_touching_no_chunks_is_empty() {
    let fs = MemFs::new();
    let tracker = IoTracker::new();
    let mut b = write_step(
        &fs,
        &tracker,
        BackendSpec::Aggregated(2),
        CodecSpec::Identity,
        2,
        3,
        32,
        false,
    );
    // Levels exist (0..2) and tasks exist (0..3), but never jointly in
    // this box: tasks 10..=20 are unpopulated.
    let sel = ReadSelection::parse("box:0-1,10-20").unwrap();
    let read = b.read_selection(1, "/plt", &sel).unwrap();
    assert!(read.chunks.is_empty());

    let mut reorg = Reorganizer::new(&fs as &dyn Vfs, &tracker, CodecSpec::Identity);
    reorg.reorganize(b.as_mut(), 1, "/plt").unwrap();
    let opt = reorg.read_selection(1, &sel).unwrap();
    assert!(opt.chunks.is_empty());
    // The reorganized reader consulted only the directory + in-range
    // table segments; no level file opened.
    assert_eq!(opt.stats.files, 1, "index directory only");
    assert_eq!(opt.stats.logical_bytes, 0);
}

/// Selections on an account-only (modeled) step return modeled sizes
/// with intact physical accounting — and the same logical volume a
/// materialized run of the same shape returns.
#[test]
fn selection_on_account_only_step_is_modeled() {
    let sel = ReadSelection::Level(1);
    for backend in BACKENDS {
        let fs_m = MemFs::new();
        let t_m = IoTracker::new();
        let mut real = write_step(&fs_m, &t_m, backend, CodecSpec::Identity, 3, 2, 64, false);
        let fs_a = MemFs::new();
        let t_a = IoTracker::new();
        let mut modeled = write_step(&fs_a, &t_a, backend, CodecSpec::Identity, 3, 2, 64, true);
        assert_eq!(fs_a.nfiles(), 0, "account-only writes nothing");

        let r = real.read_selection(1, "/plt", &sel).unwrap();
        let m = modeled.read_selection(1, "/plt", &sel).unwrap();
        let label = backend.name();
        assert!(
            m.chunks
                .iter()
                .all(|c| matches!(c.payload, Payload::Size(_))),
            "{label}"
        );
        assert_eq!(m.stats.logical_bytes, r.stats.logical_bytes, "{label}");
        assert_eq!(m.stats.files, r.stats.files, "{label}");
        assert_eq!(m.stats.bytes, r.stats.bytes, "{label}");
        assert_eq!(
            t_m.read_bytes_per_level().get(&1),
            t_a.read_bytes_per_level().get(&1),
            "{label}"
        );
    }
}

/// Selections through the lossy quantizer return the error-bounded
/// reconstruction (same length, decode∘encode fixed point) — identical
/// between a selective read and the matching slice of a full read.
#[test]
fn selection_through_lossy_quantizer_reconstructs() {
    let fs = MemFs::new();
    let tracker = IoTracker::new();
    let codec = CodecSpec::LossyQuant(6);
    let mut b = write_step(
        &fs,
        &tracker,
        BackendSpec::Aggregated(2),
        codec,
        2,
        3,
        128,
        false,
    );
    let full = b.read_step(1, "/plt").unwrap();
    let sel = ReadSelection::Field("pressure".into());
    let got = b.read_selection(1, "/plt", &sel).unwrap();
    assert_eq!(contents(&got), filtered(&full, &sel));
    // Reconstructions are same-length f64 streams within the bound.
    for c in got.chunks.iter().filter(|c| c.kind == IoKind::Data) {
        let Payload::Bytes(bytes) = &c.payload else {
            panic!("quant read must be materialized")
        };
        assert_eq!(bytes.len(), 128 * 8, "logical length preserved");
    }
    // The wire was compressed: selective physical data bytes are less
    // than the logical volume delivered.
    assert!(got.stats.bytes < got.stats.logical_bytes);
    assert!(got.stats.codec_seconds > 0.0, "decode CPU charged");
}
