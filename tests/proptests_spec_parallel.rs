//! Property tests for the parallel spec-campaign executor.
//!
//! The parallel `run_spec` (work-stealing pure-storage cells on rayon,
//! tenancy cells as mirrored clone groups chained per solo profile,
//! batched completion-order store appends) must be *observationally
//! identical* to the one-cell-at-a-time serial reference
//! (`run_spec_serial`): same row set — full `RunSummary` equality, not
//! just names — and the same resume mask against any pre-seeded store.
//! A second family pins the solo-shadow memo: serving a tenancy cell's
//! solo baseline from the memo (`SoloPricing::Known`) is bit-identical
//! on the serde wire to replaying the solo shadow cold.

use amr_proxy_io::amrproxy::store::{run_spec, run_spec_serial, ResultsStore};
use amr_proxy_io::amrproxy::{
    run_campaign_fabric, run_campaign_fabric_memoized, CastroSedovConfig, Engine, ExperimentSpec,
    RunSummary, ScalingMode,
};
use amr_proxy_io::io_engine::BackendSpec;
use amr_proxy_io::iosim::{SoloMemo, StorageModel};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

fn base(name: &str, n_cell: i64) -> CastroSedovConfig {
    CastroSedovConfig {
        name: name.into(),
        engine: Engine::Oracle,
        n_cell,
        max_step: 2,
        plot_int: 1,
        nprocs: 2,
        account_only: true,
        compute_ns_per_cell: 2000.0,
        ..Default::default()
    }
}

/// A non-empty subset of `all`, order-preserving, drawn from a bitmask
/// (the vendored proptest has no `sample::subsequence`).
fn subset_of<T: Clone + 'static>(all: Vec<T>) -> impl Strategy<Value = Vec<T>> {
    let n = all.len();
    prop::collection::vec(0u8..2, n..n + 1).prop_map(move |mask| {
        let mut out: Vec<T> = all
            .iter()
            .zip(&mask)
            .filter(|(_, m)| **m == 1)
            .map(|(v, _)| v.clone())
            .collect();
        if out.is_empty() {
            out.push(all[0].clone());
        }
        out
    })
}

fn arb_backends() -> impl Strategy<Value = Vec<BackendSpec>> {
    subset_of(vec![
        BackendSpec::FilePerProcess,
        BackendSpec::Aggregated(2),
    ])
}

/// Tenancy rungs: always at least one fabric cell (scale > 1), with the
/// solo rung and the wider rung toggled independently, so every case
/// exercises the clone-group path and most exercise the solo-memo chain.
fn arb_scales() -> impl Strategy<Value = Vec<usize>> {
    (0u8..2, 0u8..2).prop_map(|(solo, wide)| {
        let mut scales = Vec::new();
        if solo == 1 {
            scales.push(1);
        }
        scales.push(2);
        if wide == 1 {
            scales.push(4);
        }
        scales
    })
}

/// Canonical wire form of a summary list — byte-level equality.
fn canon(rows: &[RunSummary]) -> Vec<String> {
    rows.iter()
        .map(|s| serde_json::to_string(s).expect("summary serializes"))
        .collect()
}

/// A unique scratch directory per proptest case.
fn scratch(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "amrproxy_proptest_par_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The parallel executor is row-set-identical to the serial
    /// reference across randomized backend x tenancy specs: identical
    /// summaries in spec order (which subsumes modulo-order set
    /// equality), identical persisted stores, and a resume-only second
    /// pass.
    #[test]
    fn parallel_run_spec_matches_serial_reference(
        backends in arb_backends(),
        scales in arb_scales(),
        n_cell in prop_oneof![Just(16i64), Just(32)],
    ) {
        let spec = ExperimentSpec::new("par")
            .base(base("sedov", n_cell))
            .backends(&backends)
            .scales(&scales)
            .scaling(ScalingMode::Throughput);
        let storage = StorageModel::ideal(4, 5e7);

        let serial_dir = scratch("serial");
        let mut serial_store = ResultsStore::open(&serial_dir).unwrap();
        let serial = run_spec_serial(&spec, &mut serial_store, Some(&storage)).unwrap();

        let parallel_dir = scratch("parallel");
        let mut parallel_store = ResultsStore::open(&parallel_dir).unwrap();
        let parallel = run_spec(&spec, &mut parallel_store, Some(&storage)).unwrap();

        prop_assert_eq!(parallel.executed, serial.executed);
        prop_assert_eq!(parallel.resumed, 0usize);
        prop_assert_eq!(canon(&parallel.summaries), canon(&serial.summaries));

        // The two stores persisted the same rows (append order may
        // differ: the parallel store commits in completion order).
        let mut from_serial = ResultsStore::open(&serial_dir).unwrap().query().summaries();
        let mut from_parallel = ResultsStore::open(&parallel_dir).unwrap().query().summaries();
        from_serial.sort_by(|a, b| a.name.cmp(&b.name));
        from_parallel.sort_by(|a, b| a.name.cmp(&b.name));
        prop_assert_eq!(canon(&from_parallel), canon(&from_serial));

        // A second parallel pass resumes everything, bit-identically.
        let again = run_spec(&spec, &mut parallel_store, Some(&storage)).unwrap();
        prop_assert_eq!(again.executed, 0usize);
        prop_assert_eq!(again.resumed, serial.executed);
        prop_assert_eq!(canon(&again.summaries), canon(&serial.summaries));

        std::fs::remove_dir_all(&serial_dir).unwrap();
        std::fs::remove_dir_all(&parallel_dir).unwrap();
    }

    /// Both executors honor the same resume mask: pre-seed two stores
    /// with the same arbitrary subset of a prior run's cells, and the
    /// serial and parallel passes execute exactly the complement and
    /// produce identical full tables. (Identical to *each other*, not
    /// to the unmasked reference: if the mask resumes a solo-memo chain
    /// head, the re-run re-derives that profile's baseline from the next
    /// pending rung's cold replay, which lands within an ulp of — not
    /// bit-equal to — the head's fill. Both executors pick the same
    /// filler, the first pending cell per solo key in spec order, so
    /// they stay bit-identical under every mask.)
    #[test]
    fn resume_mask_is_identical_between_executors(
        scales in arb_scales(),
        mask in prop::collection::vec(0u8..2, 4..5),
    ) {
        let spec = ExperimentSpec::new("mask")
            .base(base("sedov", 16))
            .backends(&[BackendSpec::FilePerProcess, BackendSpec::Aggregated(2)])
            .scales(&scales)
            .scaling(ScalingMode::Throughput);
        let storage = StorageModel::ideal(4, 5e7);
        let cells = spec.compile().unwrap();

        // A reference run supplies the rows used to seed the stores.
        let ref_dir = scratch("mask_ref");
        let mut ref_store = ResultsStore::open(&ref_dir).unwrap();
        let reference = run_spec_serial(&spec, &mut ref_store, Some(&storage)).unwrap();

        let dirs = [scratch("mask_s"), scratch("mask_p")];
        let mut stores: Vec<ResultsStore> = dirs
            .iter()
            .map(|d| ResultsStore::open(d).unwrap())
            .collect();
        let mut persisted = 0usize;
        for (cell, keep) in cells.iter().zip(mask.iter().cycle()) {
            if *keep == 1 {
                let rows = ref_store.get(&cell.key);
                prop_assert!(!rows.is_empty());
                for store in &mut stores {
                    store.append_cell(&cell.key, &rows).unwrap();
                }
                persisted += 1;
            }
        }

        let serial = run_spec_serial(&spec, &mut stores[0], Some(&storage)).unwrap();
        let parallel = run_spec(&spec, &mut stores[1], Some(&storage)).unwrap();
        prop_assert_eq!(serial.resumed, persisted);
        prop_assert_eq!(parallel.resumed, persisted);
        prop_assert_eq!(serial.executed, cells.len() - persisted);
        prop_assert_eq!(parallel.executed, cells.len() - persisted);
        prop_assert_eq!(canon(&parallel.summaries), canon(&serial.summaries));
        // Row identity (name per slot) always matches the reference,
        // even where a re-derived solo baseline drifts by an ulp.
        let names = |rows: &[RunSummary]| -> Vec<String> {
            rows.iter().map(|s| s.name.clone()).collect()
        };
        prop_assert_eq!(names(&serial.summaries), names(&reference.summaries));

        std::fs::remove_dir_all(&ref_dir).unwrap();
        for dir in &dirs {
            std::fs::remove_dir_all(dir).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A solo-memo hit is bit-identical to the cold replay it stands in
    /// for: the first memoized campaign replays the solo shadow cold
    /// (and matches the non-memoized fabric runner exactly), and a
    /// second campaign served entirely from the memo reproduces every
    /// summary byte-for-byte on the serde wire.
    #[test]
    fn memo_hit_is_bit_identical_to_cold_replay(
        tenants in 2usize..5,
        n_cell in prop_oneof![Just(16i64), Just(32)],
        compute in prop_oneof![Just(2000.0f64), Just(40_000.0)],
    ) {
        let configs: Vec<CastroSedovConfig> = (0..tenants)
            .map(|i| CastroSedovConfig {
                compute_ns_per_cell: compute,
                ..base(&format!("memo_t{i}"), n_cell)
            })
            .collect();
        let storage = StorageModel::ideal(4, 5e7);

        // Cold: fresh memo, so the solo shadow replays and fills it.
        let memo = SoloMemo::default();
        let cold = run_campaign_fabric_memoized(&configs, &storage, &memo, "solo_profile");
        prop_assert_eq!(memo.fills(), 1);
        // The memoized runner on a miss is the plain fabric runner.
        let reference = run_campaign_fabric(&configs, &storage, None, &[]);
        prop_assert_eq!(canon(&cold), canon(&reference));

        // Hit: the same campaign priced from the memo, no replay.
        let hit = run_campaign_fabric_memoized(&configs, &storage, &memo, "solo_profile");
        prop_assert_eq!(memo.hits(), 1);
        prop_assert_eq!(memo.fills(), 1);
        prop_assert_eq!(canon(&hit), canon(&cold));
    }
}
