//! Property tests pinning the compression stage's parallel-encode
//! equivalence: for any workload, the default parallel stage
//! ([`CompressionStage::new`]) and the serial reference
//! ([`CompressionStage::serial`]) must be observationally identical
//! across the full backend × codec matrix —
//!
//! * every file on disk byte-identical (subfiles, `md.idx` aggregation
//!   indexes, `.csc` compression sidecars alike);
//! * per-step [`StepStats`] equal field by field, including the modeled
//!   `codec_seconds` (same f64 summation order) and the write-request
//!   sequence that feeds burst timing;
//! * the close [`EngineReport`] and both tracker planes equal.
//!
//! This is the contract that lets the throughput plane encode on all
//! cores without perturbing a single modeled number.

use std::collections::BTreeMap;

use amr_proxy_io::io_engine::{
    BackendSpec, CodecSpec, CompressionStage, EngineReport, IoBackend, Payload, Put,
};
use amr_proxy_io::iosim::{IoKey, IoKind, IoTracker, MemFs, Vfs};
use proptest::prelude::*;

/// One generated data chunk: `(level, task, size, seed)`. The seed picks
/// the fill pattern so the mix covers compressible runs, incompressible
/// noise, and floating-point-looking payloads (quantizer blocks).
type ChunkSpec = (u32, u32, usize, u8);

fn chunk_bytes(&(level, task, size, seed): &ChunkSpec) -> Vec<u8> {
    match seed % 3 {
        0 => vec![(level * 31 + task) as u8; size],
        1 => (0..size)
            .map(|i| ((i as u32 * 131 + task * 7 + seed as u32) % 251) as u8)
            .collect(),
        _ => (0..size)
            .flat_map(|i| ((i as f64 + task as f64) * 0.25).to_le_bytes())
            .take(size)
            .collect(),
    }
}

/// One step's flattened `StepStats` row: step, logical, physical,
/// overhead, files, codec seconds, and the (path, bytes) sidecar list.
type StatRow = (u32, u64, u64, u64, u64, f64, Vec<(String, u64)>);

/// Everything observable about one run: the full filesystem image plus
/// every accounting surface.
struct Snapshot {
    files: BTreeMap<String, Vec<u8>>,
    step_stats: Vec<StatRow>,
    report: EngineReport,
    writes: Vec<(IoKey, IoKind, u64, u64)>,
    reads: Vec<(IoKey, IoKind, u64, u64)>,
    read_back: Vec<(String, Option<Vec<u8>>)>,
}

fn run(
    parallel: bool,
    backend: BackendSpec,
    codec: CodecSpec,
    steps: &[Vec<ChunkSpec>],
) -> Snapshot {
    let fs = MemFs::new();
    let tracker = IoTracker::new();
    let inner = backend.build(&fs as &dyn Vfs, &tracker);
    let mut stack = if parallel {
        CompressionStage::new(inner, codec.build(), &fs as &dyn Vfs)
    } else {
        CompressionStage::serial(inner, codec.build(), &fs as &dyn Vfs)
    };

    let mut step_stats = Vec::new();
    for (si, chunks) in steps.iter().enumerate() {
        let step = si as u32 + 1;
        let dir = format!("/plt{step:05}");
        stack.begin_step(step, &dir);
        for (ci, spec) in chunks.iter().enumerate() {
            let (level, task, ..) = *spec;
            stack
                .put(Put {
                    key: IoKey { step, level, task },
                    kind: IoKind::Data,
                    path: format!("{dir}/L{level}/f{ci:04}_{task:05}"),
                    payload: Payload::Bytes(chunk_bytes(spec).into()),
                })
                .unwrap();
        }
        stack
            .put(Put {
                key: IoKey {
                    step,
                    level: 0,
                    task: 0,
                },
                kind: IoKind::Metadata,
                path: format!("{dir}/Header"),
                payload: Payload::Bytes(vec![b'#'; 120].into()),
            })
            .unwrap();
        let s = stack.end_step().unwrap();
        step_stats.push((
            s.step,
            s.files,
            s.bytes,
            s.logical_bytes,
            s.overhead_bytes,
            s.codec_seconds,
            s.requests
                .iter()
                .map(|r| (r.path.clone(), r.bytes))
                .collect(),
        ));
    }

    // Read plane: restart-read the last step and keep the decoded
    // logical content per path.
    let last = steps.len() as u32;
    let read = stack.read_step(last, &format!("/plt{last:05}")).unwrap();
    let mut read_back: Vec<(String, Option<Vec<u8>>)> = read
        .chunks
        .iter()
        .map(|c| {
            let bytes = match &c.payload {
                Payload::Bytes(b) => Some(b.to_vec()),
                _ => None,
            };
            (c.path.clone(), bytes)
        })
        .collect();
    read_back.sort();

    let report = stack.close().unwrap();
    let files = fs
        .list("/")
        .into_iter()
        .map(|p| {
            let content = fs.read_file(&p).unwrap();
            (p, content)
        })
        .collect();
    Snapshot {
        files,
        step_stats,
        report,
        writes: tracker.export(),
        reads: tracker.export_reads(),
        read_back,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Serial vs parallel encode across 3 backends × 3 codecs: every
    /// observable byte and number agrees.
    #[test]
    fn parallel_encode_is_byte_identical_to_serial(
        steps in prop::collection::vec(
            prop::collection::vec(
                (0u32..3, 0u32..8, 1usize..3000, 0u8..=255),
                1..24,
            ),
            1..3,
        ),
        agg_ratio in 1usize..5,
        quant_bits in 2u8..13,
    ) {
        let backends = [
            BackendSpec::FilePerProcess,
            BackendSpec::Aggregated(agg_ratio),
            BackendSpec::Deferred(1),
        ];
        let codecs = [
            CodecSpec::Identity,
            CodecSpec::Rle(2.0),
            CodecSpec::LossyQuant(quant_bits),
        ];
        for backend in backends {
            for codec in codecs {
                let serial = run(false, backend, codec, &steps);
                let parallel = run(true, backend, codec, &steps);
                let tag = format!("{}+{}", backend.name(), codec.name());

                // Filesystem images byte-identical — subfiles, md.idx
                // indexes, and .csc sidecars alike.
                prop_assert_eq!(
                    &serial.files, &parallel.files,
                    "file images differ for {}", &tag
                );
                prop_assert!(
                    serial.files.keys().any(|p| p.ends_with(".csc")),
                    "workload produced no sidecar for {}", &tag
                );

                // Accounting surfaces equal.
                prop_assert_eq!(
                    &serial.step_stats, &parallel.step_stats,
                    "step stats differ for {}", &tag
                );
                prop_assert_eq!(
                    &serial.report, &parallel.report,
                    "close report differs for {}", &tag
                );
                prop_assert_eq!(
                    &serial.writes, &parallel.writes,
                    "tracker write plane differs for {}", &tag
                );
                prop_assert_eq!(
                    &serial.reads, &parallel.reads,
                    "tracker read plane differs for {}", &tag
                );
                prop_assert_eq!(
                    &serial.read_back, &parallel.read_back,
                    "decoded restart reads differ for {}", &tag
                );
            }
        }
    }
}
