//! Determinism guarantees: the whole stack is seeded, so every experiment
//! must produce byte-identical results across runs — the property that
//! makes the paper's calibration methodology reproducible here.

use amr_proxy_io::amrproxy::{run_simulation, CastroSedovConfig, Engine};
use amr_proxy_io::iosim::{MemFs, StorageModel, Vfs};
use amr_proxy_io::macsio::{self, MacsioConfig};
use amr_proxy_io::model::XySeries;

fn cfg(engine: Engine) -> CastroSedovConfig {
    CastroSedovConfig {
        name: "det".into(),
        engine,
        n_cell: 64,
        max_level: 2,
        max_step: 14,
        plot_int: 2,
        check_int: 7,
        nprocs: 4,
        grid: amr_proxy_io::amr_mesh::GridParams {
            ref_ratio: 2,
            blocking_factor: 8,
            max_grid_size: 32,
            n_error_buf: 2,
            grid_eff: 0.7,
        },
        ctrl: amr_proxy_io::hydro::TimestepControl {
            cfl: 0.5,
            init_shrink: 0.5,
            change_max: 1.4,
        },
        account_only: true,
        ..Default::default()
    }
}

#[test]
fn amr_runs_are_byte_identical() {
    for engine in [Engine::Hydro, Engine::Oracle] {
        let a = run_simulation(&cfg(engine), None, None);
        let b = run_simulation(&cfg(engine), None, None);
        assert_eq!(a.tracker.export(), b.tracker.export(), "{engine:?}");
        assert_eq!(
            XySeries::from_tracker("run", &a.tracker, 64 * 64).points,
            XySeries::from_tracker("run", &b.tracker, 64 * 64).points,
        );
    }
}

#[test]
fn step_sequences_are_identical() {
    let a = run_simulation(&cfg(Engine::Hydro), None, None);
    let b = run_simulation(&cfg(Engine::Hydro), None, None);
    assert_eq!(a.steps.len(), b.steps.len());
    for (x, y) in a.steps.iter().zip(&b.steps) {
        assert_eq!(x, y);
    }
}

#[test]
fn macsio_files_are_byte_identical() {
    let mcfg = MacsioConfig {
        nprocs: 4,
        num_dumps: 3,
        part_size: 50_000,
        dataset_growth: 1.01,
        ..Default::default()
    };
    let fs_a = MemFs::new();
    let fs_b = MemFs::new();
    let t = amr_proxy_io::iosim::IoTracker::new();
    macsio::run(&mcfg, &fs_a, &t, None).unwrap();
    macsio::run(&mcfg, &fs_b, &t, None).unwrap();
    for f in fs_a.list("/") {
        assert_eq!(fs_a.read_file(&f), fs_b.read_file(&f), "{f}");
    }
}

#[test]
fn timed_runs_have_identical_timelines() {
    let storage = StorageModel::summit_alpine(0.1);
    let a = run_simulation(&cfg(Engine::Oracle), None, Some(&storage));
    let b = run_simulation(&cfg(Engine::Oracle), None, Some(&storage));
    assert_eq!(a.timeline, b.timeline);
    assert_eq!(a.wall_time, b.wall_time);
}

#[test]
fn vfs_and_tracker_stay_consistent_with_checkpoints() {
    // Real writes with checkpoints interleaved: the filesystem, tracker,
    // and stats must agree on every byte.
    let mut c = cfg(Engine::Hydro);
    c.account_only = false;
    c.check_int = 4;
    let fs = MemFs::with_retention(0);
    let r = run_simulation(&c, Some(&fs), None);
    // Checkpoint accounting is size-only (not written), so the filesystem
    // holds exactly the plotfile bytes.
    let plot_files: u64 = fs.nfiles() as u64;
    assert!(r.tracker.total_files() >= plot_files);
    let chk_outputs = 14 / 4;
    let plot_outputs = 14 / 2 + 1;
    assert_eq!(r.outputs as u64, plot_outputs + chk_outputs);
}
