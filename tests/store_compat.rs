//! Backward compatibility of the results plane: the single-blob JSON
//! artifacts the benches wrote before the append-only store existed
//! (`results/backend_compare.json` rows, `results/machine_room.json`
//! object) must keep loading — through `read_legacy_blob` — into the
//! same `Query` surface store-native rows use, so analyses written
//! against the store can still read pre-store results. Mirrors
//! `tests/summary_compat.rs`: the fixtures are checked in, not
//! regenerated — the point is that *old* bytes parse.

use amr_proxy_io::amrproxy::store::{read_legacy_blob, Query, ResultsStore};
use amr_proxy_io::amrproxy::{run_campaign_timed_serial, CastroSedovConfig, Engine};
use amr_proxy_io::iosim::StorageModel;
use serde_json::Value;

/// A `results/backend_compare.json` captured before the store (an array
/// of per-cell rows with the old bench's column set).
const BACKEND_COMPARE_BLOB: &str = include_str!("fixtures/backend_compare_legacy.json");

/// A `results/machine_room.json` captured before the store (one
/// aggregate object per bench run).
const MACHINE_ROOM_BLOB: &str = include_str!("fixtures/machine_room_legacy.json");

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn legacy_backend_compare_rows_load_into_a_query() {
    let q = read_legacy_blob(fixture_path("backend_compare_legacy.json")).expect("old blob loads");
    assert_eq!(q.len(), 4, "one query row per legacy array element");

    // The old column set is addressable exactly like store columns.
    assert_eq!(
        q.strings("backend"),
        vec!["fpp", "agg:4", "agg:4", "deferred:1"]
    );
    let fpp = q.clone().filter("backend", "fpp");
    assert_eq!(fpp.numbers("wall_time"), vec![0.1338]);
    assert_eq!(fpp.numbers("speedup_vs_fpp"), vec![1.0]);

    // Filters compose, aggregates reduce, exactly as on store rows.
    let agg = q.clone().filter("backend", "agg:4");
    assert_eq!(agg.len(), 2);
    assert_eq!(
        agg.clone()
            .filter("codec", "quant:8")
            .numbers("physical_bytes"),
        vec![69352440.0]
    );
    let by_backend = q.group_mean("backend", "wall_time");
    assert_eq!(by_backend.len(), 3);
    assert_eq!(by_backend[0].0, "fpp");
    assert!((by_backend[1].1 - (0.1166 + 0.8873) / 2.0).abs() < 1e-12);

    // The model bridge works on legacy rows too.
    let fit = q.fit("physical_bytes", "wall_time");
    assert!(fit.slope.is_finite());
}

#[test]
fn legacy_machine_room_object_loads_as_one_row() {
    let q = read_legacy_blob(fixture_path("machine_room_legacy.json")).expect("old blob loads");
    assert_eq!(q.len(), 1, "a single legacy object becomes one row");
    assert_eq!(q.numbers("campaign_runs"), vec![15.0]);
    assert_eq!(q.numbers("four_tenant_slowdown"), vec![1.462]);
    assert_eq!(q.mean("solo_wall_seconds"), 1.928);
    // Columns the old writer never had project as empty, not as errors.
    assert!(q.numbers("encode_mbps").is_empty());
}

#[test]
fn fixtures_match_the_checked_in_bytes() {
    // `read_legacy_blob` must see the same JSON the compile-time
    // includes pin, so the fixtures cannot drift silently.
    let from_disk: Value = serde_json::from_str(
        &std::fs::read_to_string(fixture_path("backend_compare_legacy.json")).unwrap(),
    )
    .unwrap();
    let included: Value = serde_json::from_str(BACKEND_COMPARE_BLOB).unwrap();
    assert_eq!(from_disk, included);
    let from_disk: Value = serde_json::from_str(
        &std::fs::read_to_string(fixture_path("machine_room_legacy.json")).unwrap(),
    )
    .unwrap();
    let included: Value = serde_json::from_str(MACHINE_ROOM_BLOB).unwrap();
    assert_eq!(from_disk, included);
}

#[test]
fn legacy_rows_and_store_rows_share_one_query_surface() {
    // A legacy blob and a store-native campaign answer the same query
    // shapes: project a column, filter on it, aggregate — no special
    // cases for where the rows came from.
    let legacy = read_legacy_blob(fixture_path("backend_compare_legacy.json")).unwrap();

    let dir = std::env::temp_dir().join(format!("amrproxy_store_compat_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = ResultsStore::open(&dir).unwrap();
    let cfg = CastroSedovConfig {
        name: "compat".into(),
        engine: Engine::Oracle,
        n_cell: 32,
        max_step: 4,
        plot_int: 2,
        nprocs: 2,
        account_only: true,
        ..Default::default()
    };
    let storage = StorageModel::ideal(2, 5e7);
    let summary = run_campaign_timed_serial(&[cfg], &storage).remove(0);
    store.append("cell", &summary).unwrap();

    for q in [legacy, store.query()] {
        let walls = q.numbers("wall_time");
        assert!(!walls.is_empty());
        assert!(walls.iter().all(|w| *w > 0.0));
        let backends = q.strings("backend");
        assert_eq!(backends.len(), q.len());
        let narrowed = q.clone().filter("backend", &backends[0]);
        assert!(!narrowed.is_empty());
        assert!(q.mean("wall_time") > 0.0);
    }

    // Mixed-source analysis: chain both row sets through one Query.
    let mut rows: Vec<Value> = read_legacy_blob(fixture_path("backend_compare_legacy.json"))
        .unwrap()
        .rows()
        .iter()
        .map(|(_, v)| v.clone())
        .collect();
    rows.extend(store.query().rows().iter().map(|(_, v)| v.clone()));
    let merged = Query::from_values(rows);
    assert_eq!(merged.len(), 5);
    assert_eq!(merged.numbers("wall_time").len(), 5);
    std::fs::remove_dir_all(&dir).unwrap();
}
