//! Test-suite-level guards for the paper's core claims, at scales small
//! enough for `cargo test`. The full-scale versions live in the figure
//! benches; these keep the claims from regressing between bench runs.

use amr_proxy_io::amrproxy::{case4, compare_with_macsio, run_simulation};
use amr_proxy_io::iosim::IoKind;
use amr_proxy_io::model::{linear_fit, Case4Constant, PAPER_F_RANGE};

/// Scaled-down case4 used throughout (256^2 oracle, quick).
fn pivot(cfl: f64, maxl: usize, outputs: u64) -> amr_proxy_io::amrproxy::CastroSedovConfig {
    let mut cfg = case4(cfl, maxl, outputs);
    cfg.n_cell = 256;
    cfg
}

#[test]
fn claim_fig5_linear_and_nonlinear_families_exist() {
    // A max_level=0 run is exactly linear in the cumulative variable; a
    // deep run deviates.
    let mut flat = pivot(0.5, 0, 24);
    flat.max_level = 0;
    let shallow = run_simulation(&flat, None, None);
    let s = shallow.xy_series();
    let fit = linear_fit(&s.xs(), &s.ys());
    assert!(
        fit.r2 > 0.999999,
        "unrefined run must be linear, R2={}",
        fit.r2
    );

    let deep = run_simulation(&pivot(0.6, 3, 60), None, None);
    let d = deep.xy_series();
    let fit_deep = linear_fit(&d.xs(), &d.ys());
    assert!(
        fit_deep.r2 < fit.r2,
        "refined run must deviate from linearity"
    );
}

#[test]
fn claim_fig6_levels_dominate_cfl() {
    let total = |cfl: f64, maxl: usize| {
        run_simulation(&pivot(cfl, maxl, 40), None, None)
            .tracker
            .total_bytes() as f64
    };
    let level_effect = total(0.4, 4) / total(0.4, 1);
    let cfl_effect = total(0.6, 2) / total(0.3, 2);
    assert!(level_effect > 1.02, "levels add bytes: {level_effect}");
    assert!(cfl_effect >= 1.0, "cfl adds bytes: {cfl_effect}");
    assert!(
        level_effect > cfl_effect,
        "levels ({level_effect}) must dominate cfl ({cfl_effect})"
    );
}

#[test]
fn claim_fig7_l0_constant_refined_growing() {
    let r = run_simulation(&pivot(0.5, 2, 40), None, None);
    let per_level = r.tracker.cumulative_per_level_step();
    let l0 = &per_level[&0];
    let incr: Vec<u64> = l0.windows(2).map(|w| w[1].1 - w[0].1).collect();
    let (mn, mx) = (
        *incr.iter().min().unwrap() as f64,
        *incr.iter().max().unwrap() as f64,
    );
    assert!(mx / mn < 1.02, "L0 per-step output must be near-constant");
    let l1 = &per_level[&1];
    assert!(
        l1.last().unwrap().1 - l1[l1.len() / 2].1 > l1[l1.len() / 2].1 - l1[0].1,
        "refined output accelerates as the annulus grows"
    );
}

#[test]
fn claim_fig8_refined_levels_are_task_imbalanced() {
    let r = run_simulation(&pivot(0.5, 2, 30), None, None);
    let steps = r.tracker.steps();
    let last = *steps.last().unwrap();
    let l0 = r.tracker.bytes_per_task_of(last, 0, IoKind::Data);
    let l1 = r.tracker.bytes_per_task_of(last, 1, IoKind::Data);
    let imb = |v: &[u64]| {
        let writers: Vec<u64> = v.iter().copied().filter(|&b| b > 0).collect();
        let mean = writers.iter().sum::<u64>() as f64 / writers.len() as f64;
        *v.iter().max().unwrap() as f64 / mean
    };
    assert!(imb(&l0) < 1.5, "L0 is balanced: {}", imb(&l0));
    assert!(imb(&l1) > imb(&l0), "refined level is more imbalanced");
}

#[test]
fn claim_eq3_f_lands_near_paper_band() {
    let amr = run_simulation(&pivot(0.4, 2, 30), None, None);
    let cmp = compare_with_macsio(&amr, 2);
    // The paper reports 23-25 on Summit; we assert the same order with
    // headroom for the different variable bookkeeping at small scales.
    assert!(
        cmp.calibration.f > PAPER_F_RANGE.0 - 5.0 && cmp.calibration.f < PAPER_F_RANGE.1 + 5.0,
        "f = {}",
        cmp.calibration.f
    );
    // And the paper's own worked constant is internally consistent.
    let implied = Case4Constant::implied_f();
    assert!((PAPER_F_RANGE.0..=PAPER_F_RANGE.1).contains(&implied));
}

#[test]
fn claim_fig10_growth_monotone_in_cfl() {
    let growth = |cfl: f64| {
        let amr = run_simulation(&pivot(cfl, 2, 40), None, None);
        compare_with_macsio(&amr, 2).calibration.dataset_growth
    };
    let g3 = growth(0.3);
    let g6 = growth(0.6);
    assert!(
        g6 > g3,
        "higher CFL must calibrate to higher growth: {g3} vs {g6}"
    );
    for g in [g3, g6] {
        assert!((0.995..1.08).contains(&g), "growth {g} out of band");
    }
}

#[test]
fn claim_macsio_has_no_level_granularity() {
    // The structural limitation the paper identifies: MACSio records live
    // at level 0 only.
    let amr = run_simulation(&pivot(0.5, 2, 20), None, None);
    assert!(amr.tracker.levels().len() >= 2);
    let cmp = compare_with_macsio(&amr, 1);
    // The proxy still matches per-step totals despite the missing levels.
    assert!(cmp.mape_percent < 20.0, "MAPE {}", cmp.mape_percent);
}
