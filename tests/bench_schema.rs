//! Schema check for the `BENCH_campaign.json` artifact at the repo
//! root: every consumer-visible column must be present and sane — the
//! six legacy machine-room columns, the throughput-plane additions
//! (`encode_mbps`, `selective_read_latency`), and the parallel
//! spec-executor columns (`spec_serial_wall_seconds`,
//! `spec_cells_per_sec`, `spec_parallel_speedup`,
//! `store_append_rows_per_sec`). The artifact has multiple writers,
//! each merging its own columns via
//! `amrproxy::store::update_bench_artifact`; CI runs this right after
//! regenerating it, so a column rename, a clobbering writer, or a
//! broken measurement fails the smoke job instead of shipping a
//! silently incomplete artifact.

use serde_json::Value;

/// A column's name paired with its sanity predicate.
type Column = (&'static str, fn(f64) -> bool);

/// Columns the artifact must carry, with their sanity predicate.
const COLUMNS: &[Column] = &[
    // Legacy columns (PR 6 machine room).
    ("campaign_runs", |v| v == 15.0),
    ("campaign_wall_seconds", |v| v > 0.0 && v < 3600.0),
    ("campaign_steps_per_sec", |v| v > 0.0),
    ("solo_wall_seconds", |v| v > 0.0),
    ("four_tenant_wall_seconds", |v| v > 0.0),
    ("four_tenant_slowdown", |v| v >= 1.0),
    // Throughput-plane columns (PR 8 machine room).
    ("encode_mbps", |v| v > 0.0),
    ("selective_read_latency", |v| v > 0.0 && v < 1.0),
    // Parallel spec-executor columns (spec_campaign smoke). The serial
    // wall is kept as the baseline the speedup is measured against; the
    // speedup floor is algorithmic (mirrored clone groups replace N app
    // runs per tenancy cell with one), so it holds on a 1-CPU runner.
    ("spec_serial_wall_seconds", |v| v > 0.0 && v < 3600.0),
    ("spec_cells_per_sec", |v| v > 0.0),
    ("spec_parallel_speedup", |v| v > 1.2),
    ("store_append_rows_per_sec", |v| v > 1000.0),
];

fn load() -> Value {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_campaign.json");
    let text = std::fs::read_to_string(path).expect("BENCH_campaign.json exists at the repo root");
    serde_json::from_str(&text).expect("BENCH_campaign.json parses as JSON")
}

fn fields(bench: &Value) -> Vec<(String, f64)> {
    let obj = bench.as_object().expect("artifact is a JSON object");
    obj.iter()
        .map(|(k, v)| {
            let n = v
                .as_f64()
                .unwrap_or_else(|| panic!("bench column '{k}' is not numeric"));
            (k.clone(), n)
        })
        .collect()
}

#[test]
fn bench_artifact_has_every_column() {
    let bench = load();
    let fields = fields(&bench);
    for (key, ok) in COLUMNS {
        let v = fields
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("missing bench column '{key}'"))
            .1;
        assert!(v.is_finite(), "bench column '{key}' is not finite: {v}");
        assert!(ok(v), "bench column '{key}' fails its sanity check: {v}");
    }
}

#[test]
fn bench_artifact_has_no_unknown_columns() {
    let bench = load();
    for (key, _) in fields(&bench) {
        assert!(
            COLUMNS.iter().any(|(k, _)| *k == key),
            "unexpected bench column '{key}' — add it to the schema check"
        );
    }
}

#[test]
fn four_tenant_slowdown_is_consistent_with_walls() {
    let bench = load();
    let fields = fields(&bench);
    let get = |k: &str| fields.iter().find(|(f, _)| f == k).unwrap().1;
    let ratio = get("four_tenant_wall_seconds") / get("solo_wall_seconds");
    let slowdown = get("four_tenant_slowdown");
    assert!(
        (ratio - slowdown).abs() < 0.25,
        "slowdown {slowdown} inconsistent with wall ratio {ratio}"
    );
}
