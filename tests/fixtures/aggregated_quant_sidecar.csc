# io-engine compression sidecar, codec quant:8, step 1
16716 2237 quant:8 /plt00000/Level_0/Cell_D_00000
16718 2239 quant:8 /plt00000/Level_0/Cell_D_00001
16718 2239 quant:8 /plt00000/Level_0/Cell_D_00002
16720 2234 quant:8 /plt00000/Level_0/Cell_D_00003
