//! Property tests for the declarative experiment grammar and the
//! results store.
//!
//! The five legacy `*_sweep` families are frozen here as inline
//! reference implementations (copied verbatim from the pre-spec
//! `campaign.rs`); each must stay byte-identical — full config-list
//! equality through the serde wire format — to its `ExperimentSpec`
//! compilation, which is what the shims now delegate to. The store
//! properties cover the append/reopen round trip (byte-identical rows)
//! and resume (exactly the persisted cells are skipped).

use amr_proxy_io::amrproxy::store::{run_spec, ResultsStore};
use amr_proxy_io::amrproxy::{
    analysis_sweep, backend_codec_sweep, backend_sweep, restart_sweep, run_campaign_serial,
    scenario_sweep, CastroSedovConfig, Engine, ExperimentSpec, RunMode, Scenario,
};
use amr_proxy_io::io_engine::{BackendSpec, CodecSpec, ReadSelection};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

// ── Frozen legacy reference implementations ────────────────────────────

fn legacy_backend_sweep(
    configs: &[CastroSedovConfig],
    backends: &[BackendSpec],
) -> Vec<CastroSedovConfig> {
    let mut out = Vec::new();
    for cfg in configs {
        for &backend in backends {
            out.push(CastroSedovConfig {
                name: format!("{}_{}", cfg.name, backend.name().replace(':', "")),
                backend,
                ..cfg.clone()
            });
        }
    }
    out
}

fn legacy_backend_codec_sweep(
    configs: &[CastroSedovConfig],
    backends: &[BackendSpec],
    codecs: &[CodecSpec],
) -> Vec<CastroSedovConfig> {
    let mut out = Vec::new();
    for cfg in configs {
        for &backend in backends {
            for &codec in codecs {
                out.push(CastroSedovConfig {
                    name: format!(
                        "{}_{}_{}",
                        cfg.name,
                        backend.name().replace(':', ""),
                        codec.name().replace(':', "").replace('.', "p")
                    ),
                    backend,
                    codec,
                    ..cfg.clone()
                });
            }
        }
    }
    out
}

fn legacy_restart_sweep(
    configs: &[CastroSedovConfig],
    backends: &[BackendSpec],
    codecs: &[CodecSpec],
) -> Vec<CastroSedovConfig> {
    let mut out = Vec::new();
    for cfg in legacy_backend_codec_sweep(configs, backends, codecs) {
        out.push(cfg.clone());
        out.push(CastroSedovConfig {
            name: format!("{}_restart", cfg.name),
            read_after_write: true,
            ..cfg
        });
    }
    out
}

fn legacy_disambiguate_tags(tags: &mut [String], prefix: char) {
    loop {
        let snapshot: Vec<String> = tags.to_vec();
        let mut changed = false;
        for i in 0..tags.len() {
            if snapshot.iter().filter(|t| **t == snapshot[i]).count() > 1 {
                tags[i] = format!("{}_{prefix}{i}", snapshot[i]);
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

fn legacy_analysis_sweep(
    configs: &[CastroSedovConfig],
    backends: &[BackendSpec],
    codecs: &[CodecSpec],
    patterns: &[ReadSelection],
) -> Vec<CastroSedovConfig> {
    let mut tags: Vec<String> = patterns
        .iter()
        .map(|p| {
            p.name()
                .replace(':', "")
                .replace('-', "to")
                .replace([',', '/', '.'], "_")
        })
        .collect();
    legacy_disambiguate_tags(&mut tags, 'p');
    let mut out = Vec::new();
    for cfg in legacy_backend_codec_sweep(configs, backends, codecs) {
        for (pattern, tag) in patterns.iter().zip(&tags) {
            for reorganize in [false, true] {
                out.push(CastroSedovConfig {
                    name: format!(
                        "{}_{}_{}",
                        cfg.name,
                        tag,
                        if reorganize { "reorg" } else { "raw" }
                    ),
                    analysis_read: Some(pattern.clone()),
                    reorganize,
                    ..cfg.clone()
                });
            }
        }
    }
    out
}

fn legacy_scenario_sweep(
    configs: &[CastroSedovConfig],
    scenarios: &[Scenario],
) -> Vec<CastroSedovConfig> {
    let mut tags: Vec<String> = scenarios
        .iter()
        .map(|s| {
            s.name()
                .replace([';', ','], "_")
                .replace('-', "to")
                .replace([':', '@', '.', '/'], "")
        })
        .collect();
    legacy_disambiguate_tags(&mut tags, 's');
    let mut out = Vec::new();
    for cfg in configs {
        for (scenario, tag) in scenarios.iter().zip(&tags) {
            out.push(CastroSedovConfig {
                name: format!("{}_{}", cfg.name, tag),
                scenario: Some(scenario.clone()),
                ..cfg.clone()
            });
        }
    }
    out
}

// ── Strategies ─────────────────────────────────────────────────────────

/// A non-empty subset of `all`, order-preserving, drawn from a bitmask
/// (the vendored proptest has no `sample::subsequence`).
fn subset_of<T: Clone + 'static>(all: Vec<T>) -> impl Strategy<Value = Vec<T>> {
    let n = all.len();
    prop::collection::vec(0u8..2, n..n + 1).prop_map(move |mask| {
        let mut out: Vec<T> = all
            .iter()
            .zip(&mask)
            .filter(|(_, m)| **m == 1)
            .map(|(v, _)| v.clone())
            .collect();
        if out.is_empty() {
            out.push(all[0].clone());
        }
        out
    })
}

fn arb_bases() -> impl Strategy<Value = Vec<CastroSedovConfig>> {
    (
        prop_oneof![Just("m"), Just("sedov"), Just("case4")],
        prop_oneof![Just(32i64), Just(64)],
        prop_oneof![Just(2usize), Just(4)],
        prop_oneof![Just(1usize), Just(2)],
    )
        .prop_map(|(name, n_cell, nprocs, nbases)| {
            (0..nbases)
                .map(|i| CastroSedovConfig {
                    name: if i == 0 {
                        name.to_string()
                    } else {
                        format!("{name}{i}")
                    },
                    engine: Engine::Oracle,
                    n_cell,
                    max_step: 4,
                    plot_int: 2,
                    nprocs,
                    account_only: true,
                    ..Default::default()
                })
                .collect()
        })
}

fn arb_backends() -> impl Strategy<Value = Vec<BackendSpec>> {
    subset_of(vec![
        BackendSpec::FilePerProcess,
        BackendSpec::Aggregated(1),
        BackendSpec::Aggregated(4),
        BackendSpec::Aggregated(16),
        BackendSpec::Deferred(1),
    ])
}

fn arb_codecs() -> impl Strategy<Value = Vec<CodecSpec>> {
    subset_of(vec![
        CodecSpec::Identity,
        CodecSpec::Rle(2.0),
        CodecSpec::Rle(2.5),
        CodecSpec::LossyQuant(8),
    ])
}

fn arb_patterns() -> impl Strategy<Value = Vec<ReadSelection>> {
    // The last two flatten to the same lossy tag ("fielda_b"), forcing
    // the index-disambiguation path on both sides of the comparison.
    subset_of(vec![
        ReadSelection::Level(1),
        ReadSelection::Field("Cell".to_string()),
        ReadSelection::parse("box:0-1,0-2").unwrap(),
        ReadSelection::Field("a.b".to_string()),
        ReadSelection::Field("a/b".to_string()),
    ])
}

fn arb_scenarios() -> impl Strategy<Value = Vec<Scenario>> {
    subset_of(vec![
        Scenario::write_only(),
        Scenario::parse("write;restart").unwrap(),
        Scenario::parse("write;fail@2;restart").unwrap(),
        Scenario::parse("write;check@2;fail@2;restart").unwrap(),
        Scenario::parse("write;analyze_every:2:level:1").unwrap(),
    ])
}

/// Canonical wire form of a config list — byte-level equality.
fn canon(cfgs: &[CastroSedovConfig]) -> Vec<String> {
    cfgs.iter()
        .map(|c| serde_json::to_string(c).expect("config serializes"))
        .collect()
}

/// A unique scratch directory per proptest case.
fn scratch(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "amrproxy_proptest_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `backend_sweep` == its spec compilation, byte-identical.
    #[test]
    fn backend_sweep_matches_spec(bases in arb_bases(), backends in arb_backends()) {
        prop_assert_eq!(
            canon(&legacy_backend_sweep(&bases, &backends)),
            canon(&backend_sweep(&bases, &backends))
        );
    }

    /// `backend_codec_sweep` == its spec compilation, byte-identical.
    #[test]
    fn backend_codec_sweep_matches_spec(
        bases in arb_bases(),
        backends in arb_backends(),
        codecs in arb_codecs(),
    ) {
        prop_assert_eq!(
            canon(&legacy_backend_codec_sweep(&bases, &backends, &codecs)),
            canon(&backend_codec_sweep(&bases, &backends, &codecs))
        );
    }

    /// `restart_sweep` == its spec compilation, byte-identical.
    #[test]
    fn restart_sweep_matches_spec(
        bases in arb_bases(),
        backends in arb_backends(),
        codecs in arb_codecs(),
    ) {
        prop_assert_eq!(
            canon(&legacy_restart_sweep(&bases, &backends, &codecs)),
            canon(&restart_sweep(&bases, &backends, &codecs))
        );
    }

    /// `analysis_sweep` == its spec compilation, byte-identical —
    /// including the lossy pattern-tag flattening and its index
    /// disambiguation.
    #[test]
    fn analysis_sweep_matches_spec(
        bases in arb_bases(),
        backends in arb_backends(),
        codecs in arb_codecs(),
        patterns in arb_patterns(),
    ) {
        prop_assert_eq!(
            canon(&legacy_analysis_sweep(&bases, &backends, &codecs, &patterns)),
            canon(&analysis_sweep(&bases, &backends, &codecs, &patterns))
        );
    }

    /// `scenario_sweep` == its spec compilation, byte-identical.
    #[test]
    fn scenario_sweep_matches_spec(bases in arb_bases(), scenarios in arb_scenarios()) {
        prop_assert_eq!(
            canon(&legacy_scenario_sweep(&bases, &scenarios)),
            canon(&scenario_sweep(&bases, &scenarios))
        );
    }

    /// Store round trip: append N summaries, reopen, and every row comes
    /// back byte-identical (wire-format string equality, not just
    /// structural equality).
    #[test]
    fn store_round_trip_is_byte_identical(
        walls in prop::collection::vec(0.001f64..100.0, 1..6),
    ) {
        let template = run_campaign_serial(&[CastroSedovConfig {
            name: "rt".into(),
            engine: Engine::Oracle,
            n_cell: 16,
            max_step: 2,
            plot_int: 1,
            nprocs: 2,
            account_only: true,
            ..Default::default()
        }])
        .remove(0);
        let dir = scratch("rt");
        let mut originals = Vec::new();
        {
            let mut store = ResultsStore::open(&dir).unwrap();
            for (i, wall) in walls.iter().enumerate() {
                let mut s = template.clone();
                s.name = format!("row{i}");
                s.wall_time = *wall;
                store.append(&format!("cell{i}"), &s).unwrap();
                originals.push(s);
            }
        }
        let store = ResultsStore::open(&dir).unwrap();
        prop_assert_eq!(store.len(), originals.len());
        for (i, original) in originals.iter().enumerate() {
            let got = store.get(&format!("cell{i}"));
            prop_assert_eq!(&got[..], std::slice::from_ref(original));
            let wire_orig = serde_json::to_string(original).unwrap();
            let wire_got = serde_json::to_string(&got[0]).unwrap();
            prop_assert_eq!(wire_orig, wire_got, "row {} drifted on disk", i);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Resume skips exactly the persisted cells: pre-persist an arbitrary
    /// subset of a compiled spec's cells, then `run_spec` executes the
    /// complement and resumes the subset.
    #[test]
    fn resume_skips_exactly_the_persisted_cells(
        backends in arb_backends(),
        mask in prop::collection::vec(0u8..2, 5..6),
    ) {
        let base = CastroSedovConfig {
            name: "resume".into(),
            engine: Engine::Oracle,
            n_cell: 16,
            max_step: 2,
            plot_int: 1,
            nprocs: 2,
            account_only: true,
            ..Default::default()
        };
        let spec = ExperimentSpec::over("resume", std::slice::from_ref(&base))
            .backends(&backends)
            .modes(&[RunMode::Write, RunMode::Restart]);
        let cells = spec.compile().unwrap();
        let template = run_campaign_serial(std::slice::from_ref(&base)).remove(0);

        let dir = scratch("resume");
        let mut store = ResultsStore::open(&dir).unwrap();
        let mut persisted = 0usize;
        for (cell, keep) in cells.iter().zip(mask.iter().cycle()) {
            if *keep == 1 {
                store.append(&cell.key, &template).unwrap();
                persisted += 1;
            }
        }
        let report = run_spec(&spec, &mut store, None).unwrap();
        prop_assert_eq!(report.resumed, persisted);
        prop_assert_eq!(report.executed, cells.len() - persisted);
        prop_assert_eq!(report.summaries.len(), cells.len());
        // A second pass is now fully resumed.
        let again = run_spec(&spec, &mut store, None).unwrap();
        prop_assert_eq!(again.executed, 0);
        prop_assert_eq!(again.resumed, cells.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
