//! Cross-crate backend tests at the plotfile layer: the same AMR dump
//! emitted through each io-engine backend keeps its byte accounting and
//! reshapes only the physical file set.

use amr_proxy_io::amr_mesh::prelude::*;
use amr_proxy_io::amrproxy::{run_simulation, CastroSedovConfig, Engine};
use amr_proxy_io::io_engine::BackendSpec;
use amr_proxy_io::iosim::{IoTracker, MemFs, Vfs};
use amr_proxy_io::plotfile::{write_plotfile_with, PlotLevel, PlotfileSpec};

fn level_mf(n: i64, max: i64, nranks: usize) -> MultiFab {
    let ba = BoxArray::single(IndexBox::at_origin(IntVect::splat(n))).max_size(max);
    let dm = DistributionMapping::new(&ba, nranks, DistributionStrategy::Sfc);
    let mut mf = MultiFab::new(ba, dm, 2, 0);
    mf.set_val(0, 1.25);
    mf.set_val(1, 2.5);
    mf
}

fn dump_through(backend: BackendSpec, mf: &MultiFab) -> (MemFs, IoTracker, u64, u64) {
    let fs = MemFs::new();
    let tracker = IoTracker::new();
    let spec = PlotfileSpec {
        dir: "/plt00000".to_string(),
        output_counter: 1,
        time: 0.5,
        var_names: vec!["density".into(), "pressure".into()],
        ref_ratio: 2,
        levels: vec![PlotLevel {
            geom: Geometry::unit_square(IntVect::splat(64)),
            mf,
            level_steps: 4,
        }],
        inputs: vec![("amr.n_cell".into(), "64 64".into())],
    };
    let mut live = backend.build(&fs as &dyn Vfs, &tracker);
    let stats = write_plotfile_with(live.as_mut(), &spec).unwrap();
    live.close().unwrap();
    drop(live);
    (fs, tracker, stats.nfiles, stats.total_bytes)
}

#[test]
fn plotfile_tracker_is_backend_invariant() {
    let mf = level_mf(64, 16, 4);
    let (_, t_fpp, files_fpp, _) = dump_through(BackendSpec::FilePerProcess, &mf);
    let (_, t_agg, files_agg, _) = dump_through(BackendSpec::Aggregated(2), &mf);
    let (_, t_def, files_def, _) = dump_through(BackendSpec::Deferred(1), &mf);
    assert_eq!(t_fpp.export(), t_agg.export());
    assert_eq!(t_fpp.export(), t_def.export());
    // fpp: 4 Cell_D + Cell_H + Header + job_info = 7 files.
    assert_eq!(files_fpp, 7);
    assert_eq!(files_def, files_fpp, "deferred keeps the N-to-N layout");
    // agg: ceil(4/2) subfiles + 1 index = 3 files.
    assert_eq!(files_agg, 3);
}

#[test]
fn aggregated_plotfile_embeds_all_payload_bytes() {
    let mf = level_mf(32, 16, 4);
    let (fs_fpp, tracker, _, _) = dump_through(BackendSpec::FilePerProcess, &mf);
    let (fs_agg, _, _, bytes_agg) = dump_through(BackendSpec::Aggregated(4), &mf);
    // Payload (tracker) bytes are conserved; the index table is the only
    // addition.
    assert_eq!(tracker.total_bytes(), fs_fpp.total_bytes());
    assert!(fs_agg.total_bytes() >= tracker.total_bytes());
    assert_eq!(bytes_agg, fs_agg.total_bytes());
    // The index names the logical Cell_D paths for readers.
    let idx = fs_agg
        .read_file("/plt00000/bp00001/md.idx")
        .expect("index exists");
    let head = String::from_utf8_lossy(&idx);
    assert!(head.contains("Cell_D_00000"), "{head}");
}

#[test]
fn full_run_backend_sweep_preserves_series() {
    let base = CastroSedovConfig {
        name: "stack".into(),
        engine: Engine::Oracle,
        n_cell: 64,
        max_level: 2,
        max_step: 8,
        plot_int: 2,
        nprocs: 4,
        account_only: true,
        ..Default::default()
    };
    let series: Vec<Vec<(f64, f64)>> = [
        BackendSpec::FilePerProcess,
        BackendSpec::Aggregated(2),
        BackendSpec::Deferred(1),
    ]
    .into_iter()
    .map(|backend| {
        let cfg = CastroSedovConfig {
            backend,
            ..base.clone()
        };
        let r = run_simulation(&cfg, None, None);
        let xy = r.xy_series();
        xy.points.iter().map(|p| (p.x, p.y)).collect()
    })
    .collect();
    assert_eq!(series[0], series[1], "Eq. (1)/(2) series backend-invariant");
    assert_eq!(series[0], series[2]);
}
