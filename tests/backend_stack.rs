//! Cross-crate backend tests at the plotfile layer: the same AMR dump
//! emitted through each io-engine backend keeps its byte accounting and
//! reshapes only the physical file set.
//!
//! Timing assertions in this file use the **simulated** clock only (the
//! `StorageModel` / `BurstScheduler` pair): no wall-clock reads, sleeps,
//! or host-speed-dependent thresholds — the deferred drain pool's real
//! threads are exercised for correctness (every staged byte lands), never
//! timed against the host.

use amr_proxy_io::amr_mesh::prelude::*;
use amr_proxy_io::amrproxy::{run_simulation, CastroSedovConfig, Engine};
use amr_proxy_io::io_engine::BackendSpec;
use amr_proxy_io::iosim::{IoTracker, MemFs, StorageModel, Vfs};
use amr_proxy_io::plotfile::{write_plotfile_with, PlotLevel, PlotfileSpec};

fn level_mf(n: i64, max: i64, nranks: usize) -> MultiFab {
    let ba = BoxArray::single(IndexBox::at_origin(IntVect::splat(n))).max_size(max);
    let dm = DistributionMapping::new(&ba, nranks, DistributionStrategy::Sfc);
    let mut mf = MultiFab::new(ba, dm, 2, 0);
    mf.set_val(0, 1.25);
    mf.set_val(1, 2.5);
    mf
}

fn dump_through(backend: BackendSpec, mf: &MultiFab) -> (MemFs, IoTracker, u64, u64) {
    let fs = MemFs::new();
    let tracker = IoTracker::new();
    let spec = PlotfileSpec {
        dir: "/plt00000".to_string(),
        output_counter: 1,
        time: 0.5,
        var_names: vec!["density".into(), "pressure".into()],
        ref_ratio: 2,
        levels: vec![PlotLevel {
            geom: Geometry::unit_square(IntVect::splat(64)),
            mf,
            level_steps: 4,
        }],
        inputs: vec![("amr.n_cell".into(), "64 64".into())],
    };
    let mut live = backend.build(&fs as &dyn Vfs, &tracker);
    let stats = write_plotfile_with(live.as_mut(), &spec).unwrap();
    live.close().unwrap();
    drop(live);
    (fs, tracker, stats.nfiles, stats.total_bytes)
}

#[test]
fn plotfile_tracker_is_backend_invariant() {
    let mf = level_mf(64, 16, 4);
    let (_, t_fpp, files_fpp, _) = dump_through(BackendSpec::FilePerProcess, &mf);
    let (_, t_agg, files_agg, _) = dump_through(BackendSpec::Aggregated(2), &mf);
    let (_, t_def, files_def, _) = dump_through(BackendSpec::Deferred(1), &mf);
    assert_eq!(t_fpp.export(), t_agg.export());
    assert_eq!(t_fpp.export(), t_def.export());
    // fpp: 4 Cell_D + Cell_H + Header + job_info = 7 files.
    assert_eq!(files_fpp, 7);
    assert_eq!(files_def, files_fpp, "deferred keeps the N-to-N layout");
    // agg: ceil(4/2) subfiles + 1 index = 3 files.
    assert_eq!(files_agg, 3);
}

#[test]
fn aggregated_plotfile_embeds_all_payload_bytes() {
    let mf = level_mf(32, 16, 4);
    let (fs_fpp, tracker, _, _) = dump_through(BackendSpec::FilePerProcess, &mf);
    let (fs_agg, _, _, bytes_agg) = dump_through(BackendSpec::Aggregated(4), &mf);
    // Payload (tracker) bytes are conserved; the index table is the only
    // addition.
    assert_eq!(tracker.total_bytes(), fs_fpp.total_bytes());
    assert!(fs_agg.total_bytes() >= tracker.total_bytes());
    assert_eq!(bytes_agg, fs_agg.total_bytes());
    // The index names the logical Cell_D paths for readers.
    let idx = fs_agg
        .read_file("/plt00000/bp00001/md.idx")
        .expect("index exists");
    let head = String::from_utf8_lossy(&idx);
    assert!(head.contains("Cell_D_00000"), "{head}");
}

#[test]
fn full_run_backend_sweep_preserves_series() {
    let base = CastroSedovConfig {
        name: "stack".into(),
        engine: Engine::Oracle,
        n_cell: 64,
        max_level: 2,
        max_step: 8,
        plot_int: 2,
        nprocs: 4,
        account_only: true,
        ..Default::default()
    };
    let series: Vec<Vec<(f64, f64)>> = [
        BackendSpec::FilePerProcess,
        BackendSpec::Aggregated(2),
        BackendSpec::Deferred(1),
    ]
    .into_iter()
    .map(|backend| {
        let cfg = CastroSedovConfig {
            backend,
            ..base.clone()
        };
        let r = run_simulation(&cfg, None, None);
        let xy = r.xy_series();
        xy.points.iter().map(|p| (p.x, p.y)).collect()
    })
    .collect();
    assert_eq!(series[0], series[1], "Eq. (1)/(2) series backend-invariant");
    assert_eq!(series[0], series[2]);
}

#[test]
fn deferred_drain_timing_is_simulated_not_wall_clock() {
    // The deferred backend's overlap claim is asserted on the simulated
    // clock: a deterministic storage model times both runs, so the test
    // is exact and immune to host scheduling (no sleeps, no tolerances).
    let base = CastroSedovConfig {
        name: "clock".into(),
        engine: Engine::Oracle,
        n_cell: 64,
        max_level: 2,
        max_step: 8,
        plot_int: 2,
        nprocs: 4,
        account_only: true,
        compute_ns_per_cell: 40_000.0,
        ..Default::default()
    };
    let storage = StorageModel::ideal(2, 5e7);
    let run = |backend| {
        let cfg = CastroSedovConfig {
            backend,
            ..base.clone()
        };
        run_simulation(&cfg, None, Some(&storage))
    };
    let fpp = run(BackendSpec::FilePerProcess);
    let deferred = run(BackendSpec::Deferred(2));

    // Identical byte volumes, deterministically reproducible wall times.
    assert_eq!(fpp.tracker.export(), deferred.tracker.export());
    let deferred_again = run(BackendSpec::Deferred(2));
    assert_eq!(
        deferred.wall_time, deferred_again.wall_time,
        "simulated clock is exactly reproducible"
    );

    // Overlap strictly beats the synchronous drain on the simulated clock.
    assert!(
        deferred.wall_time < fpp.wall_time,
        "deferred {} must beat fpp {}",
        deferred.wall_time,
        fpp.wall_time
    );

    // Burst structure on the simulated timeline: both policies keep at
    // most one drain in flight (bursts never overlap each other), and the
    // deferred run's closing barrier waits for its last drain.
    let fpp_bursts = fpp.timeline.bursts();
    assert!(fpp_bursts
        .windows(2)
        .all(|w| w[1].t_start >= w[0].t_end - 1e-12));
    let def_bursts = deferred.timeline.bursts();
    assert_eq!(def_bursts.len(), fpp_bursts.len());
    assert!(def_bursts
        .windows(2)
        .all(|w| w[1].t_start >= w[0].t_end - 1e-12));
    let last_drain_end = def_bursts.last().expect("bursts exist").t_end;
    assert!(
        deferred.wall_time >= last_drain_end - 1e-12,
        "closing flush barriers against the in-flight drain"
    );
    // The drains themselves take the same simulated time per byte; the
    // win comes purely from hiding them behind compute.
    let drain_time = |bursts: &[amr_proxy_io::iosim::Burst]| -> f64 {
        bursts.iter().map(|b| b.t_end - b.t_start).sum()
    };
    assert!(drain_time(def_bursts) > 0.0);
    assert!(
        (drain_time(def_bursts) - drain_time(fpp_bursts)).abs() < 0.05 * drain_time(fpp_bursts),
        "same bytes, same drain work: {} vs {}",
        drain_time(def_bursts),
        drain_time(fpp_bursts)
    );
}

#[test]
fn deferred_drain_pool_lands_every_staged_byte() {
    // Correctness of the real drain threads, asserted on filesystem
    // content only (no timing): every staged file arrives intact after
    // close, through a shared handle and a multi-worker pool.
    use std::sync::Arc;
    let fs: Arc<dyn Vfs> = Arc::new(MemFs::new());
    let tracker = Arc::new(IoTracker::new());
    let mut backend = BackendSpec::Deferred(3).build(Arc::clone(&fs), Arc::clone(&tracker));
    for step in 1..=5u32 {
        backend.begin_step(step, "/");
        for task in 0..4u32 {
            backend
                .put(amr_proxy_io::io_engine::Put {
                    key: amr_proxy_io::iosim::IoKey {
                        step,
                        level: 0,
                        task,
                    },
                    kind: amr_proxy_io::iosim::IoKind::Data,
                    path: format!("/s{step}_t{task}"),
                    payload: amr_proxy_io::io_engine::Payload::Bytes(vec![task as u8; 256].into()),
                })
                .unwrap();
        }
        backend.end_step().unwrap();
    }
    let report = backend.close().unwrap();
    assert_eq!(report.files, 20);
    assert_eq!(fs.nfiles(), 20);
    for step in 1..=5u32 {
        for task in 0..4u32 {
            assert_eq!(
                fs.read_file(&format!("/s{step}_t{task}")),
                Some(vec![task as u8; 256]),
                "staged file must land intact"
            );
        }
    }
    assert_eq!(tracker.total_bytes(), 20 * 256);
}
