//! The in-transit streaming plane end-to-end: one in-situ analysis
//! workload (`write;analyze_every:2:level:1`) run stored and streamed,
//! with the PR's headline invariants asserted — so this example doubles
//! as the streaming smoke suite in CI.
//!
//! Demonstrated claims:
//!
//! 1. **Streamed analysis is physically free.** The `analyze` reads are
//!    served from the consumer's in-memory window: zero physical read
//!    bytes, zero files opened — while the stored run pays for every
//!    selected chunk on disk.
//! 2. **The logical planes don't know the difference.** The tracker's
//!    write and read exports are bit-exact between the streamed and
//!    stored runs: streaming re-routes bytes, it never changes what the
//!    workload logically produced or consumed.
//! 3. **A fast link beats bandwidth-bound storage.** With dumps bound
//!    by a 50 MB/s disk array and a 12.5 GB/s NIC, the streamed run's
//!    wall clock wins.
//! 4. **A throttled link loses to that same storage.** Choke the link
//!    to 10 MB/s (below the disks) and the streamed run is slower —
//!    in-transit is a bandwidth trade, not a free lunch.
//!
//! ```text
//! cargo run --release --example streaming_sweep
//! ```

use amr_proxy_io::amrproxy::{run_simulation, CastroSedovConfig, Engine, RunResult};
use amr_proxy_io::io_engine::{BackendSpec, ReadSelection, Scenario};
use amr_proxy_io::iosim::StorageModel;

fn base(name: &str) -> CastroSedovConfig {
    CastroSedovConfig {
        name: name.into(),
        engine: Engine::Oracle,
        n_cell: 128,
        max_level: 2,
        max_step: 20,
        plot_int: 4,
        nprocs: 8,
        account_only: true,
        compute_ns_per_cell: 40_000.0,
        scenario: Some(Scenario::in_run_analysis(2, ReadSelection::Level(1))),
        ..Default::default()
    }
}

fn row(label: &str, r: &RunResult) -> String {
    format!(
        "{:<22} {:>12} {:>12} {:>10} {:>9.3} {:>9.3} {:>9.3}",
        label,
        r.physical_bytes,
        r.net_bytes,
        r.selective_physical_read_bytes,
        r.wall_time,
        r.net_wall,
        r.window_stall
    )
}

fn main() {
    // Bandwidth-bound storage: 2 servers x 25 MB/s = 50 MB/s aggregate.
    let storage = StorageModel::ideal(2, 2.5e7);

    println!("== streaming sweep: stored vs in-transit analysis ==");
    println!(
        "{:<22} {:>12} {:>12} {:>10} {:>9} {:>9} {:>9}",
        "run", "phys_B", "net_B", "phys_rd_B", "wall_s", "net_s", "stall_s"
    );

    let stored = run_simulation(&base("stored"), None, Some(&storage));
    println!("{}", row("fpp @ 50 MB/s disk", &stored));

    let mut cfg = base("streamed");
    cfg.backend = BackendSpec::parse("streaming").unwrap(); // 12.5 GB/s NIC
    let streamed = run_simulation(&cfg, None, Some(&storage));
    println!("{}", row("streaming @ 12.5 GB/s", &streamed));

    let mut cfg = base("throttled");
    cfg.backend = BackendSpec::parse("streaming:10").unwrap(); // 10 MB/s link
    let throttled = run_simulation(&cfg, None, Some(&storage));
    println!("{}", row("streaming @ 10 MB/s", &throttled));

    // --- Invariant 1: streamed analysis is physically free. -----------
    assert!(
        stored.selective_read_bytes > 0,
        "the workload analyzes in-run"
    );
    assert_eq!(
        streamed.selective_physical_read_bytes, 0,
        "window-served reads touch no storage"
    );
    assert_eq!(streamed.selective_read_files, 0);
    assert_eq!(streamed.physical_bytes, 0, "no dump reaches the disks");
    assert!(
        stored.selective_physical_read_bytes > 0,
        "the stored run pays for the same selections on disk"
    );
    println!(
        "\n[1] streamed analysis: zero physical read bytes (stored pays {} B for the same selections)",
        stored.selective_physical_read_bytes
    );

    // --- Invariant 2: logical planes are bit-exact. -------------------
    assert_eq!(
        streamed.tracker.export(),
        stored.tracker.export(),
        "logical write plane is backend-invariant"
    );
    assert_eq!(
        streamed.tracker.export_reads(),
        stored.tracker.export_reads(),
        "logical read plane is backend-invariant"
    );
    assert_eq!(streamed.logical_bytes, stored.logical_bytes);
    assert_eq!(streamed.selective_read_bytes, stored.selective_read_bytes);
    assert_eq!(
        streamed.net_bytes, streamed.logical_bytes,
        "identity codec: every logical byte ships exactly once"
    );
    println!(
        "[2] tracker logical totals bit-exact across stored and streamed ({} B written, {} B analyzed)",
        streamed.logical_bytes, streamed.selective_read_bytes
    );

    // --- Invariant 3: a fast link beats bandwidth-bound storage. ------
    assert!(
        streamed.wall_time < stored.wall_time,
        "12.5 GB/s link must beat 50 MB/s disks: {} vs {}",
        streamed.wall_time,
        stored.wall_time
    );
    println!(
        "[3] fast link wins: streamed wall {:.3}s < stored wall {:.3}s on 50 MB/s disks",
        streamed.wall_time, stored.wall_time
    );

    // --- Invariant 4: a throttled link loses to the same storage. -----
    assert!(
        throttled.wall_time > stored.wall_time,
        "10 MB/s link must lose to 50 MB/s disks: {} vs {}",
        throttled.wall_time,
        stored.wall_time
    );
    assert_eq!(
        throttled.net_bytes, streamed.net_bytes,
        "throttling changes timing, not shipped volume"
    );
    println!(
        "[4] throttled link loses: streamed wall {:.3}s > stored wall {:.3}s at 10 MB/s",
        throttled.wall_time, stored.wall_time
    );

    println!("\nall streaming invariants hold");
}
