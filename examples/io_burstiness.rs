//! Dynamic ("burstiness") study: the same AMR workload against different
//! storage configurations — the use-case the paper positions MACSio for
//! once the static model is calibrated.
//!
//! ```text
//! cargo run --release --example io_burstiness
//! ```

use amr_proxy_io::amrproxy::{run_simulation, CastroSedovConfig, Engine};
use amr_proxy_io::iosim::StorageModel;

fn main() {
    let cfg = CastroSedovConfig {
        name: "burstiness".into(),
        engine: Engine::Oracle,
        n_cell: 512,
        max_level: 2,
        max_step: 40,
        plot_int: 4,
        nprocs: 32,
        compute_ns_per_cell: 2000.0,
        account_only: true,
        ..Default::default()
    };

    println!(
        "{:>14} {:>10} {:>12} {:>14} {:>12}",
        "storage", "bursts", "duty cycle", "peak BW (GB/s)", "burstiness"
    );
    for (label, scale) in [
        ("summit 1/77", 1.0 / 77.0),
        ("summit 1/9", 1.0 / 9.0),
        ("summit full", 1.0),
    ] {
        let storage = StorageModel::summit_alpine(scale);
        let r = run_simulation(&cfg, None, Some(&storage));
        println!(
            "{label:>14} {:>10} {:>12.4} {:>14.2} {:>12.1}",
            r.timeline.len(),
            r.timeline.duty_cycle(),
            r.timeline.peak_bandwidth() / 1e9,
            r.timeline.burstiness()
        );
    }

    println!(
        "\nSmaller storage slices stretch each write burst (higher duty cycle);\n\
         the full system absorbs the dump almost instantly (very bursty)."
    );
}
