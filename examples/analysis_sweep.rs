//! Analysis-read campaign: selective reads × layouts × backends × codecs.
//!
//! The read plane's Wan-et-al. question, priced end to end: AMR dumps
//! are written once in a *write-optimized* layout and read many times by
//! analysis that wants a subset — one level, one field, a spatial box.
//! How much does rewriting the dump into a *read-optimized* layout
//! (online reorganization) buy each read pattern, and how many reads
//! amortize the rewrite?
//!
//! Two parts:
//!
//! 1. **Layout proof** (io-engine level): a synthetic 3-level × 3-field
//!    AMR step written through BP-style aggregation (identity and rle
//!    codec points), then read selectively from the raw layout and from
//!    the reorganized layout. For every shown backend × codec point the
//!    by-level and by-field reads of the reorganized step fetch
//!    **strictly fewer physical bytes** and cost **strictly less
//!    simulated wall** than the same selection on the raw layout
//!    (asserted, not just printed).
//! 2. **Analysis campaign** (oracle scale): `amrproxy::analysis_sweep`
//!    crosses a Sedov slice over backends × codecs × {raw, reorganized}
//!    × read patterns on a bandwidth-bound storage model; the summary
//!    table prices each pattern on each layout, the selective-read
//!    regression (`model::fit_selective_read`) recovers the effective
//!    selective-read bandwidth, and the amortization count (reorg cost
//!    over per-read saving) is computed per pattern.
//!
//! ```text
//! cargo run --release --example analysis_sweep
//! ```

use amr_proxy_io::amrproxy::{analysis_sweep, run_campaign_timed, CastroSedovConfig, Engine};
use amr_proxy_io::io_engine::{
    BackendSpec, CodecSpec, IoBackend, Payload, Put, ReadSelection, Reorganizer,
};
use amr_proxy_io::iosim::{IoKey, IoKind, IoTracker, MemFs, StorageModel, Vfs};
use amr_proxy_io::model;

const FIELDS: [&str; 3] = ["density", "pressure", "velocity"];
const NLEVELS: u32 = 3;
const NTASKS: u32 = 16;
const VALUES_PER_CHUNK: u32 = 512;

/// Writes the synthetic step: per-field logical paths (so `field:` is a
/// by-variable query), three levels, sixteen writers.
fn write_step<'a>(
    fs: &'a MemFs,
    tracker: &'a IoTracker,
    backend: BackendSpec,
    codec: CodecSpec,
) -> Box<dyn IoBackend + 'a> {
    let mut b = backend.build_with_codec(codec, fs as &dyn Vfs, tracker);
    b.begin_step(1, "/plt");
    b.create_dir_all("/plt").unwrap();
    for task in 0..NTASKS {
        for level in 0..NLEVELS {
            for (fi, field) in FIELDS.iter().enumerate() {
                // Smooth-ish field bytes; rle-friendly runs mixed in.
                let data: Vec<u8> = (0..VALUES_PER_CHUNK)
                    .flat_map(|i| {
                        let v = ((i / 8 + task + level * 5 + fi as u32) % 32) as f64;
                        v.to_le_bytes()
                    })
                    .collect();
                b.put(Put {
                    key: IoKey {
                        step: 1,
                        level,
                        task,
                    },
                    kind: IoKind::Data,
                    path: format!("/plt/L{level}/{field}_{task:05}"),
                    payload: Payload::Bytes(data.into()),
                })
                .unwrap();
            }
        }
    }
    for meta in ["Header", "job_info"] {
        b.put(Put {
            key: IoKey {
                step: 1,
                level: 0,
                task: 0,
            },
            kind: IoKind::Metadata,
            path: format!("/plt/{meta}"),
            payload: Payload::Bytes(vec![b'#'; 600].into()),
        })
        .unwrap();
    }
    b.end_step().unwrap();
    b
}

/// Simulated wall of one read burst on `storage`.
fn read_wall(storage: &StorageModel, requests: &[amr_proxy_io::iosim::ReadRequest]) -> f64 {
    let r = storage.simulate_read_burst(requests);
    r.t_end - r.t_start
}

fn main() {
    // Bandwidth-bound storage (one server class, per-open charge): wall
    // tracks bytes moved + ranges fetched. See the reorg module docs on
    // the striping-parallelism trade this isolates.
    let storage = StorageModel {
        open_latency: 0.5e-3,
        ..StorageModel::ideal(1, 2e8)
    };

    println!("== Part 1: layout proof (synthetic step, agg:4 backend) ==");
    println!(
        "{:<10} {:<16} {:>12} {:>12} {:>9} {:>11} {:>11}",
        "codec", "pattern", "raw_bytes", "reorg_bytes", "saving", "raw_wall", "reorg_wall"
    );
    for codec in [CodecSpec::Identity, CodecSpec::Rle(2.0)] {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut src = write_step(&fs, &tracker, BackendSpec::Aggregated(4), codec);
        let mut reorg = Reorganizer::new(&fs as &dyn Vfs, &tracker, codec);
        let rstats = reorg.reorganize(src.as_mut(), 1, "/plt").unwrap();
        for sel in [
            ReadSelection::Level(1),
            ReadSelection::Field("density".into()),
            ReadSelection::parse("box:1-2,4-7").unwrap(),
        ] {
            let raw = src.read_selection(1, "/plt", &sel).unwrap();
            let opt = reorg.read_selection(1, &sel).unwrap();
            let raw_wall = read_wall(&storage, &raw.stats.requests);
            let opt_wall = read_wall(&storage, &opt.stats.requests);
            println!(
                "{:<10} {:<16} {:>12} {:>12} {:>8.1}% {:>9.2}ms {:>9.2}ms",
                codec.name(),
                sel.name(),
                raw.stats.bytes,
                opt.stats.bytes,
                100.0 * (1.0 - opt.stats.bytes as f64 / raw.stats.bytes as f64),
                raw_wall * 1e3,
                opt_wall * 1e3,
            );
            // Bytes: the reorganized layout fetches strictly fewer
            // physical bytes for every pattern (segmented index, no
            // whole-blob fetch), at identical logical volume.
            assert_eq!(raw.stats.logical_bytes, opt.stats.logical_bytes);
            assert!(
                opt.stats.bytes < raw.stats.bytes,
                "{}/{}: reorg bytes {} !< raw {}",
                codec.name(),
                sel.name(),
                opt.stats.bytes,
                raw.stats.bytes
            );
            // Wall: strictly less for the patterns the level/field
            // clustering serves — the acceptance rows. A task-aligned
            // box is the honest counter-case: the write-optimized
            // layout already stores one task's chunks contiguously, so
            // re-clustering by level/field scatters *that* query (the
            // printed row shows it; no layout wins every pattern).
            if !matches!(sel, ReadSelection::Box(_)) {
                assert!(
                    opt_wall < raw_wall,
                    "{}/{}: reorg wall {} !< raw {}",
                    codec.name(),
                    sel.name(),
                    opt_wall,
                    raw_wall
                );
            }
        }
        println!(
            "  (one-time reorg cost, {}: moved {} physical bytes)",
            codec.name(),
            rstats.read.bytes + rstats.bytes
        );
    }

    println!("\n== Part 2: oracle-scale analysis campaign ==");
    let base = CastroSedovConfig {
        name: "sedov".into(),
        engine: Engine::Oracle,
        n_cell: 128,
        max_step: 8,
        plot_int: 2,
        nprocs: 8,
        account_only: true,
        compute_ns_per_cell: 40_000.0,
        ..Default::default()
    };
    let patterns = [
        ReadSelection::Level(1),
        ReadSelection::Level(2),
        ReadSelection::parse("box:0-1,0-3").unwrap(),
    ];
    let matrix = analysis_sweep(
        &[base],
        &[BackendSpec::Aggregated(2), BackendSpec::FilePerProcess],
        &[CodecSpec::Identity, CodecSpec::LossyQuant(8)],
        &patterns,
    );
    let campaign_storage = StorageModel {
        open_latency: 0.5e-3,
        ..StorageModel::ideal(1, 5e7)
    };
    let summaries = run_campaign_timed(&matrix, &campaign_storage);
    println!(
        "{:<42} {:>12} {:>12} {:>11} {:>11}",
        "scenario", "sel_logical", "sel_physical", "sel_wall", "reorg_wall"
    );
    for s in &summaries {
        println!(
            "{:<42} {:>12} {:>12} {:>9.2}ms {:>9.2}ms",
            s.name,
            s.selective_read_bytes,
            s.selective_physical_read_bytes,
            s.selective_read_wall * 1e3,
            s.reorg_wall * 1e3,
        );
    }

    // Per (backend, codec, pattern): amortization of the rewrite on the
    // aggregated layout — how many selective reads pay for one reorg.
    println!("\n-- amortization (agg:2 rows) --");
    for s in summaries
        .iter()
        .filter(|s| s.reorganized && s.backend == "agg:2")
    {
        let raw = summaries
            .iter()
            .find(|r| {
                !r.reorganized
                    && r.backend == s.backend
                    && r.codec == s.codec
                    && r.read_pattern == s.read_pattern
            })
            .expect("raw twin");
        assert_eq!(s.selective_read_bytes, raw.selective_read_bytes);
        assert!(
            s.selective_physical_read_bytes < raw.selective_physical_read_bytes,
            "{}: {} !< {}",
            s.name,
            s.selective_physical_read_bytes,
            raw.selective_physical_read_bytes
        );
        let saving = raw.selective_read_wall - s.selective_read_wall;
        assert!(saving > 0.0, "{}: no wall saving", s.name);
        println!(
            "{:<24} {:<10} saving {:>8.3}ms/read, reorg {:>8.2}ms -> {:>6.0} reads to amortize",
            s.codec.as_str(),
            s.read_pattern,
            saving * 1e3,
            s.reorg_wall * 1e3,
            (s.reorg_wall / saving).ceil(),
        );
    }

    // The selective-read regression across every scenario.
    let xs: Vec<f64> = summaries
        .iter()
        .map(|s| s.selective_physical_read_bytes as f64)
        .collect();
    let ys: Vec<f64> = summaries.iter().map(|s| s.selective_read_wall).collect();
    let fit = model::fit_selective_read(&xs, &ys);
    println!(
        "\nselective-read fit: wall = {:.3e} + {:.3e} * bytes (r2 {:.3}) -> {:.1} MB/s effective",
        fit.intercept,
        fit.slope,
        fit.r2,
        1.0 / fit.slope / 1e6
    );
    println!("\nanalysis_sweep: all layout inequalities held.");
}
