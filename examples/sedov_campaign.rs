//! A parameterized Sedov campaign (a small slice of the paper's Table III
//! study): sweep CFL and max_level, collect the cumulative output series,
//! and classify runs as linear vs non-linear via least-squares R^2.
//!
//! ```text
//! cargo run --release --example sedov_campaign
//! ```

use amr_proxy_io::amrproxy::{run_campaign, table3_campaign};
use amr_proxy_io::model::linear_fit;

fn main() {
    // The small half of the Table III ladder for a fast demonstration.
    let configs: Vec<_> = table3_campaign()
        .into_iter()
        .filter(|c| c.n_cell <= 512)
        .collect();
    println!(
        "running {} of the 47 Table III configurations ...",
        configs.len()
    );
    let summaries = run_campaign(&configs);

    println!(
        "\n{:<28} {:>7} {:>5} {:>5} {:>9} {:>12} {:>8}",
        "run", "n_cell", "maxl", "cfl", "R^2", "bytes", "family"
    );
    for s in &summaries {
        if s.series.len() < 3 {
            continue;
        }
        let xs: Vec<f64> = s.series.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = s.series.iter().map(|p| p.1).collect();
        let fit = linear_fit(&xs, &ys);
        println!(
            "{:<28} {:>7} {:>5} {:>5} {:>9.5} {:>12} {:>8}",
            s.name,
            s.n_cell,
            s.max_level,
            s.cfl,
            fit.r2,
            s.total_bytes,
            if fit.r2 > 0.999 { "linear" } else { "non-lin" }
        );
    }

    let bytes_total: u64 = summaries.iter().map(|s| s.total_bytes).sum();
    let files_total: u64 = summaries.iter().map(|s| s.total_files).sum();
    println!("\ncampaign totals: {bytes_total} bytes across {files_total} files");
}
