//! The declarative campaign end-to-end: parse a TOML experiment spec,
//! execute it against the append-only results store, run it *again* and
//! prove the second pass resumes every cell from disk, then reproduce
//! the campaign table and a model fit purely from the store's query
//! plane — this example doubles as the campaign-spec smoke suite in CI.
//!
//! The store is durable across invocations: running this example a
//! second time (same process or a fresh one) executes zero cells.
//!
//! ```text
//! cargo run --release --example spec_campaign
//! ```

use amr_proxy_io::amrproxy::store::{run_spec, ResultsStore};
use amr_proxy_io::amrproxy::ExperimentSpec;
use amr_proxy_io::iosim::StorageModel;

fn main() {
    let root = env!("CARGO_MANIFEST_DIR");
    let spec = ExperimentSpec::load(format!("{root}/specs/smoke.toml")).expect("parse smoke spec");
    let storage = StorageModel::ideal(4, 5e7);
    let mut store =
        ResultsStore::open(format!("{root}/results/store/smoke")).expect("open results store");

    // Pass 1 executes whatever the store does not yet hold; pass 2 must
    // resume everything.
    let first = run_spec(&spec, &mut store, Some(&storage)).expect("first pass");
    println!(
        "first pass:  executed={} resumed={}",
        first.executed, first.resumed
    );
    let second = run_spec(&spec, &mut store, Some(&storage)).expect("second pass");
    println!(
        "second pass: executed={} resumed={}",
        second.executed, second.resumed
    );
    assert_eq!(second.executed, 0, "second pass must be resume-only");
    assert_eq!(second.resumed, first.executed + first.resumed);
    assert_eq!(
        second.summaries, first.summaries,
        "resumed summaries are identical to the executed ones"
    );

    // The campaign table, reproduced from the store's query plane — not
    // from the in-memory run reports.
    let q = store.query();
    let rows = q.summaries();
    assert_eq!(
        rows, second.summaries,
        "the query plane reproduces the campaign table exactly"
    );
    println!(
        "\n{:<28} {:>12} {:>10} {:>14} {:>10}",
        "label", "backend", "codec", "phys bytes", "wall (s)"
    );
    for s in &rows {
        println!(
            "{:<28} {:>12} {:>10} {:>14} {:>10.4}",
            s.name, s.backend, s.codec, s.physical_bytes, s.wall_time
        );
    }

    println!("\nmean wall by backend (store group_mean):");
    for (backend, wall) in q.group_mean("backend", "wall_time") {
        println!("  {backend:<12} {wall:.4} s");
    }

    // The excluded cell really is excluded, and the codec lever levers.
    assert_eq!(rows.len(), 5, "3 backends x 2 codecs minus one exclude");
    assert!(
        q.clone()
            .filter("backend", "deferred:1")
            .filter("codec", "quant:8")
            .is_empty(),
        "the [[exclude]] cell must not run"
    );
    let id = q.clone().filter("codec", "identity").mean("physical_bytes");
    let quant = q.clone().filter("codec", "quant:8").mean("physical_bytes");
    assert!(quant < id, "quant:8 must shrink the wire volume");

    // The store -> model bridge: a least-squares line over two store
    // columns.
    let fit = q.fit("physical_bytes", "wall_time");
    println!(
        "\nwall vs physical bytes over the store rows: slope {:.3e} s/B (r2 {:.3})",
        fit.slope, fit.r2
    );

    println!(
        "\nspec campaign OK: store {} holds {} rows, second pass executed 0 cells",
        store.dir().display(),
        store.len()
    );
}
