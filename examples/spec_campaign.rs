//! The declarative campaign end-to-end: parse a TOML experiment spec,
//! execute it against the append-only results store, run it *again* and
//! prove the second pass resumes every cell from disk, then reproduce
//! the campaign table and a model fit purely from the store's query
//! plane — this example doubles as the campaign-spec smoke suite in CI.
//!
//! It then times `specs/ladder.toml` (a 2/4/8-tenant throughput ladder)
//! under the serial reference executor and the parallel one, asserts
//! the two are bit-identical and that a third pass is resume-only, and
//! records `spec_parallel_speedup`, `spec_cells_per_sec`, and
//! `store_append_rows_per_sec` into `BENCH_campaign.json`.
//!
//! The store is durable across invocations: running this example a
//! second time (same process or a fresh one) executes zero cells.
//!
//! ```text
//! cargo run --release --example spec_campaign
//! ```

use amr_proxy_io::amrproxy::store::{
    run_spec, run_spec_serial, update_bench_artifact, ResultsStore,
};
use amr_proxy_io::amrproxy::ExperimentSpec;
use amr_proxy_io::iosim::StorageModel;

fn main() {
    let root = env!("CARGO_MANIFEST_DIR");
    let spec = ExperimentSpec::load(format!("{root}/specs/smoke.toml")).expect("parse smoke spec");
    let storage = StorageModel::ideal(4, 5e7);
    let mut store =
        ResultsStore::open(format!("{root}/results/store/smoke")).expect("open results store");

    // Pass 1 executes whatever the store does not yet hold; pass 2 must
    // resume everything.
    let first = run_spec(&spec, &mut store, Some(&storage)).expect("first pass");
    println!(
        "first pass:  executed={} resumed={}",
        first.executed, first.resumed
    );
    let second = run_spec(&spec, &mut store, Some(&storage)).expect("second pass");
    println!(
        "second pass: executed={} resumed={}",
        second.executed, second.resumed
    );
    assert_eq!(second.executed, 0, "second pass must be resume-only");
    assert_eq!(second.resumed, first.executed + first.resumed);
    assert_eq!(
        second.summaries, first.summaries,
        "resumed summaries are identical to the executed ones"
    );

    // The campaign table, reproduced from the store's query plane — not
    // from the in-memory run reports.
    let q = store.query();
    let rows = q.summaries();
    assert_eq!(
        rows, second.summaries,
        "the query plane reproduces the campaign table exactly"
    );
    println!(
        "\n{:<28} {:>12} {:>10} {:>14} {:>10}",
        "label", "backend", "codec", "phys bytes", "wall (s)"
    );
    for s in &rows {
        println!(
            "{:<28} {:>12} {:>10} {:>14} {:>10.4}",
            s.name, s.backend, s.codec, s.physical_bytes, s.wall_time
        );
    }

    println!("\nmean wall by backend (store group_mean):");
    for (backend, wall) in q.group_mean("backend", "wall_time") {
        println!("  {backend:<12} {wall:.4} s");
    }

    // The excluded cell really is excluded, and the codec lever levers.
    assert_eq!(rows.len(), 5, "3 backends x 2 codecs minus one exclude");
    assert!(
        q.clone()
            .filter("backend", "deferred:1")
            .filter("codec", "quant:8")
            .is_empty(),
        "the [[exclude]] cell must not run"
    );
    let id = q.clone().filter("codec", "identity").mean("physical_bytes");
    let quant = q.clone().filter("codec", "quant:8").mean("physical_bytes");
    assert!(quant < id, "quant:8 must shrink the wire volume");

    // The store -> model bridge: a least-squares line over two store
    // columns.
    let fit = q.fit("physical_bytes", "wall_time");
    println!(
        "\nwall vs physical bytes over the store rows: slope {:.3e} s/B (r2 {:.3})",
        fit.slope, fit.r2
    );

    // ── The parallel executor against its serial reference ──────────
    // The throughput ladder (2/4/8 tenant clones per cell) runs twice
    // from scratch: once under the one-cell-at-a-time serial reference,
    // once under the parallel executor (mirrored clone groups + solo
    // memo + batched appends). Results must be bit-identical; only the
    // wall may differ.
    let ladder =
        ExperimentSpec::load(format!("{root}/specs/ladder.toml")).expect("parse ladder spec");
    let serial_dir = format!("{root}/results/store/ladder_serial");
    let parallel_dir = format!("{root}/results/store/ladder_parallel");
    // Fresh stores each invocation: the walls below must time real
    // execution, not resume.
    let _ = std::fs::remove_dir_all(&serial_dir);
    let _ = std::fs::remove_dir_all(&parallel_dir);
    let mut serial_store = ResultsStore::open(&serial_dir).expect("open serial store");
    let started = std::time::Instant::now();
    let serial = run_spec_serial(&ladder, &mut serial_store, Some(&storage)).expect("serial run");
    let serial_wall = started.elapsed().as_secs_f64();
    println!(
        "\nladder serial:   executed={} resumed={} wall={:.3}s",
        serial.executed, serial.resumed, serial_wall
    );
    let mut parallel_store = ResultsStore::open(&parallel_dir).expect("open parallel store");
    let started = std::time::Instant::now();
    let parallel = run_spec(&ladder, &mut parallel_store, Some(&storage)).expect("parallel run");
    let parallel_wall = started.elapsed().as_secs_f64();
    println!(
        "ladder parallel: executed={} resumed={} wall={:.3}s",
        parallel.executed, parallel.resumed, parallel_wall
    );
    assert_eq!(
        parallel.summaries, serial.summaries,
        "the parallel executor must be result-identical to the serial reference"
    );
    let resumed = run_spec(&ladder, &mut parallel_store, Some(&storage)).expect("ladder resume");
    println!(
        "ladder resume:   executed={} resumed={}",
        resumed.executed, resumed.resumed
    );
    assert_eq!(
        resumed.executed, 0,
        "ladder second pass must be resume-only"
    );
    assert_eq!(resumed.summaries, parallel.summaries);
    let speedup = serial_wall / parallel_wall;
    let cells_per_sec = parallel.executed as f64 / parallel_wall;
    println!(
        "spec executor speedup: {speedup:.2}x over serial ({} cells, {cells_per_sec:.1} cells/s)",
        parallel.executed
    );

    // Batched store-append micro-throughput (the path every finished
    // cell commits through).
    let bench_dir = format!("{root}/results/store/append_bench");
    let _ = std::fs::remove_dir_all(&bench_dir);
    let mut bench_store = ResultsStore::open(&bench_dir).expect("open append-bench store");
    let batch: Vec<_> = std::iter::repeat_with(|| serial.summaries[0].clone())
        .take(64)
        .collect();
    let started = std::time::Instant::now();
    let mut appended = 0u64;
    while started.elapsed().as_secs_f64() < 0.05 {
        bench_store
            .append_cell("bench_cell", &batch)
            .expect("bench append");
        appended += batch.len() as u64;
    }
    let append_rows_per_sec = appended as f64 / started.elapsed().as_secs_f64();
    println!("store append: {append_rows_per_sec:.0} rows/s (batched, 64-row cells)");
    let _ = std::fs::remove_dir_all(&bench_dir);

    update_bench_artifact(
        format!("{root}/BENCH_campaign.json"),
        &[
            (
                "spec_serial_wall_seconds",
                serde_json::to_value(&serial_wall),
            ),
            ("spec_cells_per_sec", serde_json::to_value(&cells_per_sec)),
            ("spec_parallel_speedup", serde_json::to_value(&speedup)),
            (
                "store_append_rows_per_sec",
                serde_json::to_value(&append_rows_per_sec),
            ),
        ],
    )
    .expect("update bench artifact");

    println!(
        "\nspec campaign OK: store {} holds {} rows, second pass executed 0 cells",
        store.dir().display(),
        store.len()
    );
}
