//! Standalone MACSio usage: the proxy I/O application by itself, written
//! to a real directory on disk, with the Summit-like storage timing model
//! attached — the paper's Fig. 3 output pattern end to end.
//!
//! ```text
//! cargo run --release --example macsio_standalone
//! ```

use amr_proxy_io::iosim::{IoTracker, RealFs, StorageModel, Vfs};
use amr_proxy_io::macsio::{run, FileMode, Interface, MacsioConfig};

fn main() {
    let out_dir = std::env::temp_dir().join("macsio_standalone_demo");
    let cfg = MacsioConfig {
        interface: Interface::Miftmpl,
        parallel_file_mode: FileMode::Mif(8),
        num_dumps: 5,
        part_size: 200_000,
        avg_num_parts: 1.0,
        vars_per_part: 2,
        compute_time: 2.0,
        meta_size: 512,
        dataset_growth: 1.013075, // the paper's calibrated pivot value
        nprocs: 8,
        seed: 42,
        io_backend: Default::default(),
        compression: Default::default(),
        mode: Default::default(),
        read_pattern: Default::default(),
        scenario: None,
    };
    println!("# {}", cfg.command_line());

    let fs = RealFs::new(&out_dir).expect("temp dir");
    let tracker = IoTracker::new();
    let storage = StorageModel::summit_alpine(0.1);
    let report = run(&cfg, &fs, &tracker, Some(&storage)).expect("macsio run");

    println!(
        "\nwrote {} files under {}",
        report.files_written,
        out_dir.display()
    );
    for f in fs.list("/").iter().take(6) {
        println!("  {f}  ({} bytes)", fs.file_size(f).unwrap());
    }
    println!("  ...");

    println!("\nper-dump bytes (note the dataset_growth compounding):");
    for (k, b) in report.bytes_per_dump.iter().enumerate() {
        println!("  dump {k}: {b}");
    }
    println!(
        "\nsimulated timing: wall {:.2}s, I/O duty cycle {:.4}, burstiness {:.1}x",
        report.wall_time,
        report.timeline.duty_cycle(),
        report.timeline.burstiness()
    );

    std::fs::remove_dir_all(&out_dir).ok();
}
