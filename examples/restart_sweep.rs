//! Write + restart campaign across the full backend × codec matrix.
//!
//! Two parts:
//!
//! 1. **Round-trip proof** (materialized bytes): every backend × codec
//!    stack writes a step of synthetic AMR-like field chunks, reads it
//!    back through the new read plane, and the restart bytes are checked
//!    against the exact logical bytes written. The f64 fields are
//!    *lattice-valued* (integers 0..=255 with per-block anchors), so even
//!    the lossy quantizer reproduces them bit-exactly at 8 bits — the
//!    whole 3×3 matrix round-trips byte-identically.
//! 2. **Restart campaign** (oracle scale): the Sedov slice swept over
//!    {3 backends × 3 codecs × write/restart}, timed on a
//!    bandwidth-bound storage model; restart rows report read bytes and
//!    read wall-clock, and the read-time regression
//!    (`model::fit_read_time`) recovers the effective restart bandwidth.
//!
//! ```text
//! cargo run --release --example restart_sweep
//! ```

use amr_proxy_io::amrproxy::store::{run_spec, ResultsStore};
use amr_proxy_io::amrproxy::{CastroSedovConfig, Engine, ExperimentSpec, RunMode};
use amr_proxy_io::io_engine::{BackendSpec, CodecSpec, Payload, Put};
use amr_proxy_io::iosim::{IoKey, IoKind, IoTracker, MemFs, StorageModel, Vfs};
use amr_proxy_io::model;

/// `nvals` f64 values on the 8-bit quantization lattice: integers in
/// [0, 255] with 0 and 255 anchored per 256-value block, so quant:8
/// stores them exactly (scale = 1.0, q = v).
fn lattice_field(nvals: usize, salt: u32) -> Vec<u8> {
    let mut vals: Vec<f64> = (0..nvals)
        .map(|i| ((i as u32 * 37 + salt * 11) % 256) as f64)
        .collect();
    for block in vals.chunks_mut(256) {
        block[0] = 0.0;
        let last = block.len() - 1;
        block[last] = 255.0;
    }
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn main() {
    let backends = [
        BackendSpec::FilePerProcess,
        BackendSpec::Aggregated(4),
        BackendSpec::Deferred(1),
    ];
    let codecs = [
        CodecSpec::Identity,
        CodecSpec::Rle(2.0),
        CodecSpec::LossyQuant(8),
    ];

    // --- Part 1: byte-exact restart round trip ------------------------
    println!("# restart round-trip, 3 backends x 3 codecs, materialized bytes\n");
    let nprocs = 8u32;
    for backend in backends {
        for codec in codecs {
            let fs = MemFs::new();
            let tracker = IoTracker::new();
            let mut stack = backend.build_with_codec(codec, &fs as &dyn Vfs, &tracker);
            let mut written: Vec<(String, Vec<u8>)> = Vec::new();
            stack.begin_step(1, "/plt00001");
            for task in 0..nprocs {
                let path = format!("/plt00001/Level_0/Cell_D_{task:05}");
                let data = lattice_field(2048, task);
                written.push((path.clone(), data.clone()));
                stack
                    .put(Put {
                        key: IoKey {
                            step: 1,
                            level: 0,
                            task,
                        },
                        kind: IoKind::Data,
                        path,
                        payload: Payload::Bytes(data.into()),
                    })
                    .unwrap();
            }
            stack
                .put(Put {
                    key: IoKey {
                        step: 1,
                        level: 0,
                        task: 0,
                    },
                    kind: IoKind::Metadata,
                    path: "/plt00001/Header".into(),
                    payload: Payload::Bytes(b"restart header".to_vec().into()),
                })
                .unwrap();
            let stats = stack.end_step().unwrap();

            let read = stack.read_step(1, "/plt00001").unwrap();
            for (path, data) in &written {
                let back = read
                    .logical_content(path)
                    .unwrap_or_else(|| panic!("{path} not materialized"));
                assert_eq!(
                    &back,
                    data,
                    "{}/{}: restart bytes differ",
                    backend.name(),
                    codec.name()
                );
            }
            assert_eq!(
                read.logical_content("/plt00001/Header").unwrap(),
                b"restart header".to_vec()
            );
            assert_eq!(
                tracker.total_read_bytes(),
                stats.logical_bytes,
                "read plane sees the logical bytes"
            );
            stack.close().unwrap();
            println!(
                "  {:<18} wrote {:>7} physical B, restart fetched {:>7} B -> {} logical B round-trip exact",
                format!("{}+{}", backend.name(), codec.name()),
                stats.bytes,
                read.stats.bytes,
                read.stats.logical_bytes,
            );
        }
    }

    // --- Part 2: write/restart campaign -------------------------------
    println!("\n# restart campaign: 3 backends x 3 codecs x {{write, restart}}\n");
    let base = CastroSedovConfig {
        name: "sedov256".into(),
        engine: Engine::Oracle,
        n_cell: 256,
        max_level: 2,
        max_step: 16,
        plot_int: 2,
        nprocs: 32,
        account_only: true,
        compute_ns_per_cell: 2_000.0,
        ..Default::default()
    };
    let spec = ExperimentSpec::over("restart_sweep", &[base])
        .backends(&backends)
        .codecs(&codecs)
        .modes(&[RunMode::Write, RunMode::Restart]);
    let storage = StorageModel::ideal(8, 2.5e8);
    let mut store = ResultsStore::open(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/store/restart_sweep"
    ))
    .expect("open results store");
    let report = run_spec(&spec, &mut store, Some(&storage)).expect("run spec");
    println!(
        "store {}: {} cells executed, {} resumed\n",
        store.dir().display(),
        report.executed,
        report.resumed
    );
    let summaries = report.summaries;
    println!(
        "{:<10} {:>10} {:>8} {:>13} {:>13} {:>10} {:>10}",
        "backend", "codec", "mode", "phys bytes", "read bytes", "read wall", "wall (s)"
    );
    for s in &summaries {
        println!(
            "{:<10} {:>10} {:>8} {:>13} {:>13} {:>10.4} {:>10.4}",
            s.backend,
            s.codec,
            if s.restart { "restart" } else { "write" },
            s.physical_bytes,
            s.physical_read_bytes,
            s.read_wall,
            s.wall_time,
        );
    }

    // Logical read bytes are backend- and codec-invariant; restarts cost
    // wall-clock over their write-only twins.
    let restarts: Vec<_> = summaries.iter().filter(|s| s.restart).collect();
    assert_eq!(restarts.len(), 9);
    assert!(restarts
        .windows(2)
        .all(|w| w[0].read_bytes == w[1].read_bytes));
    for r in &restarts {
        let twin = summaries
            .iter()
            .find(|s| !s.restart && s.backend == r.backend && s.codec == r.codec)
            .expect("write twin");
        assert!(
            r.wall_time > twin.wall_time,
            "{}: restart must cost",
            r.name
        );
        assert!(r.read_wall > 0.0);
    }

    // The read-time regression, served by the store's query plane:
    // filter the restart rows, project the two columns as an XySeries,
    // and hand it to the model crate's read-time fit.
    let series = store.query().filter("restart", "true").xy(
        "physical_read_bytes",
        "read_wall",
        "restart reads",
    );
    assert_eq!(series.points.len(), restarts.len());
    let fit = model::fit_read_time(&series.xs(), &series.ys());
    println!(
        "\nread-time regression over the 9 restart rows: \
         wall = {:.4} s + bytes / {:.3e} B/s (r2 = {:.4})",
        fit.intercept,
        1.0 / fit.slope,
        fit.r2
    );
    assert!(fit.slope > 0.0, "more read bytes, more read wall");
    println!("\nrestart reads round-trip and are priced across the full matrix: OK");
}
