//! Autotuning workflow — the paper's stated end-goal: use calibrated
//! proxy models to predict I/O parameters for configurations that were
//! never run, then characterize the workload a tuned proxy produces.
//!
//! 1. Calibrate MACSio against a small grid of AMR runs (cfl × max_level).
//! 2. Fit the linear growth/f predictor on those calibrations (the
//!    "machine-learning approaches" follow-up of the paper's conclusion).
//! 3. Predict the proxy parameters for an unseen configuration and check
//!    them against a real calibration of that configuration.
//! 4. Print the Darshan-style characterization of the tuned proxy run.
//!
//! ```text
//! cargo run --release --example autotune_proxy
//! ```

use amr_proxy_io::amrproxy::{case4, compare_with_macsio, run_simulation};
use amr_proxy_io::iosim::{characterize, IoTracker, MemFs};
use amr_proxy_io::macsio;
use amr_proxy_io::model::{translate, GrowthPredictor, Observation, TranslationModel};

fn calibrate(cfl: f64, maxl: usize) -> Observation {
    let mut cfg = case4(cfl, maxl, 30);
    cfg.n_cell = 256; // keep the training grid quick
    let amr = run_simulation(&cfg, None, None);
    let cmp = compare_with_macsio(&amr, 2);
    Observation {
        cfl,
        max_level: maxl,
        n_cell: cfg.n_cell,
        dataset_growth: cmp.calibration.dataset_growth,
        f: cmp.calibration.f,
    }
}

fn main() {
    // 1. Training grid.
    println!("calibrating the training grid (cfl x max_level) ...");
    let mut observations = Vec::new();
    for &cfl in &[0.3, 0.5, 0.6] {
        for &maxl in &[2usize, 3] {
            let obs = calibrate(cfl, maxl);
            println!(
                "  cfl={cfl} maxl={maxl}: growth={:.5} f={:.2}",
                obs.dataset_growth, obs.f
            );
            observations.push(obs);
        }
    }

    // 2. Fit.
    let predictor = GrowthPredictor::fit(&observations);
    println!(
        "\nfitted growth coefficients (1, cfl, maxl, log2 n): {:?}",
        predictor.growth_coefs
    );

    // 3. Predict an unseen configuration and validate.
    let (cfl, maxl) = (0.4, 2usize);
    let predicted_growth = predictor.predict_growth(cfl, maxl, 256);
    let predicted_f = predictor.predict_f(cfl, maxl, 256);
    let actual = calibrate(cfl, maxl);
    println!(
        "\nunseen config cfl={cfl} maxl={maxl}:\n  predicted growth={predicted_growth:.5} f={predicted_f:.2}\n  actual    growth={:.5} f={:.2}",
        actual.dataset_growth, actual.f
    );
    println!(
        "  growth error = {:.5}",
        (predicted_growth - actual.dataset_growth).abs()
    );

    // 4. Run the predicted proxy and characterize its workload.
    let inputs = amr_proxy_io::model::AmrInputs {
        max_step: 30,
        n_cell: (256, 256),
        max_level: maxl,
        plot_int: 1,
        cfl,
        nprocs: 32,
    };
    let cfg = translate(
        &inputs,
        &TranslationModel {
            f: predicted_f,
            dataset_growth: predicted_growth,
            compute_time: 1.0,
            meta_size: 256,
            compression_ratio: 1.0,
        },
    );
    let fs = MemFs::with_retention(0);
    let tracker = IoTracker::new();
    let storage = amr_proxy_io::iosim::StorageModel::summit_alpine(0.1);
    let report = macsio::run(&cfg, &fs, &tracker, Some(&storage)).expect("proxy run");
    println!("\ntuned proxy invocation:\n  {}", cfg.command_line());
    println!("\nDarshan-style characterization of the tuned proxy:");
    print!(
        "{}",
        characterize(&tracker, Some(&report.timeline)).render()
    );
}
