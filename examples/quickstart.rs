//! Quickstart: run a small AMR Sedov simulation, look at the I/O it
//! produces, and translate it into an equivalent MACSio proxy invocation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use amr_proxy_io::amrproxy::{compare_with_macsio, run_simulation, CastroSedovConfig, Engine};

fn main() {
    // A 128^2 Sedov run with 2 refinement levels on 8 simulated ranks —
    // the Listing 2 input file, scaled down.
    let cfg = CastroSedovConfig {
        name: "quickstart".into(),
        engine: Engine::Hydro,
        n_cell: 128,
        max_level: 2,
        max_step: 30,
        plot_int: 2,
        nprocs: 8,
        grid: amr_proxy_io::amr_mesh::GridParams {
            ref_ratio: 2,
            blocking_factor: 8,
            max_grid_size: 64,
            n_error_buf: 2,
            grid_eff: 0.7,
        },
        ctrl: amr_proxy_io::hydro::TimestepControl {
            cfl: 0.5,
            init_shrink: 0.5,
            change_max: 1.4,
        },
        account_only: true,
        ..Default::default()
    };

    println!(
        "running {}: {}^2 cells, {} levels, {} ranks ...",
        cfg.name,
        cfg.n_cell,
        cfg.max_level + 1,
        cfg.nprocs
    );
    let result = run_simulation(&cfg, None, None);

    println!("\nplot dumps: {}", result.outputs);
    println!("total bytes: {}", result.tracker.total_bytes());
    println!("total files: {}", result.tracker.total_files());

    println!("\ncumulative output per plot step (Eq. 1/2 of the paper):");
    println!(
        "{:>6} {:>16} {:>16}",
        "dump", "x (cum. cells)", "y (cum. bytes)"
    );
    for p in result.xy_series().points.iter() {
        println!("{:>6} {:>16.4e} {:>16.4e}", "", p.x, p.y);
    }

    println!("\nper-level byte share:");
    for (level, bytes) in result.tracker.bytes_per_level() {
        println!(
            "  L{level}: {bytes:>14}  ({:.1}%)",
            100.0 * bytes as f64 / result.tracker.total_bytes() as f64
        );
    }

    // Translate + calibrate the MACSio proxy against this run.
    let cmp = compare_with_macsio(&result, 2);
    println!("\ncalibrated MACSio equivalent (Listing 1 of the paper):");
    println!("  {}", cmp.macsio_command);
    println!(
        "  fit: dataset_growth = {:.6}, f = {:.2}, per-step MAPE = {:.2}%",
        cmp.calibration.dataset_growth, cmp.calibration.f, cmp.mape_percent
    );
}
