//! The machine room end-to-end: one shared storage fabric serving N
//! overlapping campaigns, with solo-equivalence, interference, QoS, and
//! burst-buffer back-pressure each asserted — this example doubles as
//! the machine-room smoke suite in CI.
//!
//! Demonstrated planes:
//!
//! 1. **Solo identity** — a single tenant on the fabric reproduces the
//!    legacy private-model campaign *exactly* (every summary column).
//! 2. **Tenancy ladder** — N ∈ {1, 2, 4, 8} identical Sedov campaigns
//!    sharing the fabric: per-tenant slowdown is 1.0 solo, grows
//!    monotonically with N, and wall-vs-N fits a positive slope.
//! 3. **Mixed fleet** — a Sedov AMR campaign and a MACSio dump stream
//!    overlap on the same servers; both see contention the interference
//!    plane attributes.
//! 4. **QoS** — a weight-4 tenant beats its own fair-share wall and
//!    leads the weighted run (the competitor may *also* improve: faster
//!    drains desynchronize the fleets and can shrink total
//!    interference).
//! 5. **Staging pool** — deferred-backend tenants contending for a
//!    bounded burst buffer accrue `staging_wait` instead of free
//!    overlap.
//!
//! Writes `BENCH_campaign.json` at the repo root: campaign throughput in
//! real steps/sec plus the solo vs 4-tenant walls, the parallel-encode
//! bandwidth (`encode_mbps`), and the selective-read latency
//! (`selective_read_latency`). Every timing self-calibrates to a minimum
//! measurement window and reports the median of 3 repetitions — a single
//! ~10 ms pass is scheduler noise, not a benchmark.
//!
//! ```text
//! cargo run --release --example machine_room
//! ```

use amr_proxy_io::amrproxy::{
    run_campaign_fabric, run_campaign_timed_serial, run_simulation_attached, CastroSedovConfig,
    Engine, RunSummary,
};
use amr_proxy_io::io_engine::{
    BackendSpec, CodecSpec, CompressionStage, IoBackend, Payload, Put, ReadSelection,
};
use amr_proxy_io::iosim::{
    Fabric, IoKey, IoKind, IoTracker, MemFs, QosPolicy, StorageAttach, StorageModel, Vfs,
};
use amr_proxy_io::macsio::{self, MacsioConfig};
use amr_proxy_io::model::linear_fit;

fn sedov(name: &str) -> CastroSedovConfig {
    CastroSedovConfig {
        name: name.into(),
        engine: Engine::Oracle,
        n_cell: 128,
        max_level: 2,
        max_step: 16,
        plot_int: 4,
        nprocs: 8,
        account_only: true,
        compute_ns_per_cell: 40_000.0,
        ..Default::default()
    }
}

fn storage() -> StorageModel {
    StorageModel {
        metadata_latency: 1e-4,
        ..StorageModel::ideal(4, 5e7)
    }
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.collect();
    v.iter().sum::<f64>() / v.len() as f64
}

/// Minimum length of one timed window. Anything shorter measures the
/// scheduler, not the workload.
const MIN_WINDOW: f64 = 0.25;

/// Times `f`, self-calibrated: first sizes a repetition count so one
/// window runs at least [`MIN_WINDOW`] seconds, then takes 3 such
/// windows and returns the median seconds *per call* of `f`.
fn measure_seconds_per_call(mut f: impl FnMut()) -> f64 {
    let t0 = std::time::Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let reps = ((MIN_WINDOW / once).ceil() as usize).max(1);
    let mut per_call: Vec<f64> = (0..3)
        .map(|_| {
            let t = std::time::Instant::now();
            for _ in 0..reps {
                f();
            }
            t.elapsed().as_secs_f64() / reps as f64
        })
        .collect();
    per_call.sort_by(f64::total_cmp);
    per_call[1]
}

fn row(n: usize, s: &RunSummary) -> String {
    format!(
        "{n:>8} {:>12.3} {:>12.3} {:>9.3} {:>12.3} {:>12.3}",
        s.wall_time, s.solo_wall, s.slowdown, s.contention_stall, s.throttle_stall
    )
}

fn main() {
    let storage = storage();

    // ── 1. Solo identity: fabric with one tenant == legacy model. ──────
    let legacy = run_campaign_timed_serial(&[sedov("solo")], &storage);
    let fabric_solo = run_campaign_fabric(&[sedov("solo")], &storage, None, &[]);
    assert_eq!(legacy, fabric_solo, "solo tenant must be exact");
    println!(
        "solo identity: fabric wall {:.3} s == legacy wall {:.3} s (bit-exact)",
        fabric_solo[0].wall_time, legacy[0].wall_time
    );

    // ── 2. Tenancy ladder: N identical Sedov campaigns. ────────────────
    println!(
        "\n{:>8} {:>12} {:>12} {:>9} {:>12} {:>12}",
        "tenants", "wall[s]", "solo[s]", "slowdown", "contention", "throttle"
    );
    let ladder = [1usize, 2, 4, 8];
    let mut total_steps = 0u64;
    let mut mean_slowdowns = Vec::new();
    let mut mean_walls = Vec::new();
    let mut by_n = Vec::new();
    for &n in &ladder {
        let configs: Vec<CastroSedovConfig> =
            (0..n).map(|i| sedov(&format!("sedov_t{i}"))).collect();
        total_steps += configs.iter().map(|c| c.max_step).sum::<u64>();
        let summaries = run_campaign_fabric(&configs, &storage, None, &[]);
        println!("{}", row(n, &summaries[0]));
        for s in &summaries {
            assert_eq!(s.tenants, n);
            assert!(
                s.slowdown >= 1.0 - 1e-12,
                "sharing never beats solo: {} at n={n}",
                s.slowdown
            );
            assert!(
                (s.wall_time / s.solo_wall - s.slowdown).abs() < 1e-9,
                "slowdown is exactly the wall ratio"
            );
        }
        mean_slowdowns.push(mean(summaries.iter().map(|s| s.slowdown)));
        mean_walls.push(mean(summaries.iter().map(|s| s.wall_time)));
        by_n.push(summaries);
    }
    assert_eq!(by_n[0][0].slowdown, 1.0, "one tenant on the fabric is solo");
    assert_eq!(by_n[0][0].contention_stall, 0.0);
    for w in mean_slowdowns.windows(2) {
        assert!(
            w[1] >= w[0] - 1e-9,
            "slowdown is monotone in tenancy: {w:?}"
        );
    }
    assert!(
        mean_slowdowns[3] > mean_slowdowns[0] + 0.5,
        "8 tenants must interfere visibly (got {:.3})",
        mean_slowdowns[3]
    );
    let fit = linear_fit(
        &ladder.map(|n| n as f64),
        &[mean_walls[0], mean_walls[1], mean_walls[2], mean_walls[3]],
    );
    println!(
        "wall vs tenancy: slope {:.3} s/tenant, r2 {:.4}",
        fit.slope, fit.r2
    );
    assert!(fit.slope > 0.0, "each extra tenant costs wall-clock");

    // ── 3. Mixed fleet: Sedov + MACSio on one fabric. ──────────────────
    // Slower servers than the ladder, and a back-to-back MACSio dump
    // stream, so the two fleets' bursts are guaranteed to overlap.
    let mixed_storage = StorageModel {
        metadata_latency: 1e-4,
        ..StorageModel::ideal(2, 5e6)
    };
    let fabric = Fabric::new(mixed_storage);
    let amr_handle = fabric.tenant("sedov");
    let macsio_handle = fabric.tenant("macsio");
    let (amr_wall, macsio_wall) = std::thread::scope(|s| {
        let amr = s.spawn(move || {
            run_simulation_attached(&sedov("mixed"), None, StorageAttach::Fabric(amr_handle))
                .wall_time
        });
        let mac = s.spawn(move || {
            let cfg = MacsioConfig {
                nprocs: 8,
                num_dumps: 6,
                part_size: 512 * 1024,
                compute_time: 0.0,
                ..Default::default()
            };
            let fs = MemFs::with_retention(0);
            let tracker = IoTracker::new();
            macsio::dump::run_attached(&cfg, &fs, &tracker, StorageAttach::Fabric(macsio_handle))
                .expect("macsio run")
                .wall_time
        });
        (amr.join().expect("sedov"), mac.join().expect("macsio"))
    });
    let stats = fabric.tenant_stats();
    println!(
        "\nmixed fleet: sedov wall {:.3} s (slowdown {:.3}), macsio wall {:.3} s (slowdown {:.3})",
        amr_wall,
        stats[0].slowdown(),
        macsio_wall,
        stats[1].slowdown()
    );
    assert!(stats.iter().all(|t| t.slowdown() >= 1.0 - 1e-12));
    assert!(
        stats.iter().any(|t| t.contention_stall > 0.0),
        "overlapping fleets must contend somewhere"
    );

    // ── 4. QoS: priority buys wall, the competitor pays. ───────────────
    let pair = [sedov("hi"), sedov("lo")];
    let fair = run_campaign_fabric(&pair, &storage, None, &[]);
    let weighted = run_campaign_fabric(
        &pair,
        &storage,
        None,
        &[QosPolicy::weighted(4.0), QosPolicy::default()],
    );
    println!(
        "qos: fair walls ({:.3}, {:.3}) s -> weighted walls ({:.3}, {:.3}) s",
        fair[0].wall_time, fair[1].wall_time, weighted[0].wall_time, weighted[1].wall_time
    );
    assert!(
        weighted[0].wall_time <= fair[0].wall_time + 1e-9,
        "priority must not hurt the prioritized tenant"
    );
    // Note the competitor does not necessarily pay the difference:
    // faster burst drains desynchronize the fleets, which can lower
    // *total* interference. The robust invariant is the ordering.
    assert!(
        weighted[0].wall_time <= weighted[1].wall_time + 1e-9,
        "the prioritized tenant leads the weighted run"
    );

    // ── 5. Staging pool: bounded burst buffer back-pressures. ──────────
    let deferred: Vec<CastroSedovConfig> = (0..2)
        .map(|i| CastroSedovConfig {
            backend: BackendSpec::Deferred(1),
            ..sedov(&format!("staged_t{i}"))
        })
        .collect();
    let staged = run_campaign_fabric(&deferred, &storage, Some(256 * 1024), &[]);
    let waited: f64 = staged.iter().map(|s| s.staging_wait).sum();
    println!("staging: bounded pool adds {waited:.3} s of staging wait");
    assert!(
        waited > 0.0,
        "a pool smaller than the bursts must back-pressure"
    );

    // ── Benchmark artifact at the repo root. ───────────────────────────
    // Campaign throughput: the whole tenancy ladder (240 real engine
    // steps) as one repeatable unit, self-calibrated and medianed.
    let ladder_seconds = measure_seconds_per_call(|| {
        for &n in &ladder {
            let configs: Vec<CastroSedovConfig> =
                (0..n).map(|i| sedov(&format!("sedov_t{i}"))).collect();
            let summaries = run_campaign_fabric(&configs, &storage, None, &[]);
            assert_eq!(summaries.len(), n);
        }
    });
    let steps_per_sec = total_steps as f64 / ladder_seconds;

    // Parallel-encode bandwidth: real bytes through the default
    // (parallel) compression stage; logical MB per second of wall time.
    let encode_chunks: Vec<amr_proxy_io::iosim::Bytes> = (0..64u32)
        .map(|i| {
            // Half-compressible mix, 256 KiB per chunk: runs of the task
            // id interleaved with a rolling pattern RLE cannot fold.
            let data: Vec<u8> = (0..256 * 1024usize)
                .map(|j| {
                    if (j / 4096) % 2 == 0 {
                        (i % 7) as u8
                    } else {
                        ((j as u32 * 131 + i) % 251) as u8
                    }
                })
                .collect();
            data.into()
        })
        .collect();
    let logical_mb =
        encode_chunks.iter().map(|c| c.len()).sum::<usize>() as f64 / (1024.0 * 1024.0);
    let encode_seconds = measure_seconds_per_call(|| {
        let fs = MemFs::with_retention(0);
        let tracker = IoTracker::new();
        let inner = BackendSpec::FilePerProcess.build(&fs as &dyn Vfs, &tracker);
        let mut stack = CompressionStage::new(inner, CodecSpec::Rle(2.0).build(), &fs as &dyn Vfs);
        stack.begin_step(1, "/plt");
        for (i, chunk) in encode_chunks.iter().enumerate() {
            stack
                .put(Put {
                    key: IoKey {
                        step: 1,
                        level: 0,
                        task: i as u32,
                    },
                    kind: IoKind::Data,
                    path: format!("/plt/f{i:05}"),
                    // O(1) shared view — the stage encodes the same
                    // buffers every repetition.
                    payload: Payload::Bytes(chunk.clone()),
                })
                .unwrap();
        }
        stack.end_step().unwrap();
    });
    let encode_mbps = logical_mb / encode_seconds;

    // Selective-read latency: one materialized aggregated step, then a
    // by-level selection served from the on-disk index; median seconds
    // per query.
    let sel_fs = MemFs::new();
    let sel_tracker = IoTracker::new();
    let mut sel_backend = BackendSpec::Aggregated(4).build(&sel_fs as &dyn Vfs, &sel_tracker);
    sel_backend.begin_step(1, "/plt");
    for level in 0..3u32 {
        for task in 0..32u32 {
            for field in ["density", "pressure", "temp"] {
                sel_backend
                    .put(Put {
                        key: IoKey {
                            step: 1,
                            level,
                            task,
                        },
                        kind: IoKind::Data,
                        path: format!("/plt/L{level}/{field}_{task:05}"),
                        payload: Payload::Bytes(vec![(level + task) as u8; 2048].into()),
                    })
                    .unwrap();
            }
        }
    }
    sel_backend.end_step().unwrap();
    let selective_read_latency = measure_seconds_per_call(|| {
        let read = sel_backend
            .read_selection(1, "/plt", &ReadSelection::Level(1))
            .unwrap();
        assert_eq!(read.chunks.len(), 32 * 3);
    });

    // Merged into the artifact, not overwritten: the spec-campaign
    // smoke owns the spec-executor columns of the same file.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_campaign.json");
    amr_proxy_io::amrproxy::store::update_bench_artifact(
        path,
        &[
            (
                "campaign_runs",
                serde_json::to_value(&ladder.iter().sum::<usize>()),
            ),
            (
                "campaign_wall_seconds",
                serde_json::to_value(&ladder_seconds),
            ),
            (
                "campaign_steps_per_sec",
                serde_json::to_value(&steps_per_sec),
            ),
            ("solo_wall_seconds", serde_json::to_value(&mean_walls[0])),
            (
                "four_tenant_wall_seconds",
                serde_json::to_value(&mean_walls[2]),
            ),
            (
                "four_tenant_slowdown",
                serde_json::to_value(&mean_slowdowns[2]),
            ),
            ("encode_mbps", serde_json::to_value(&encode_mbps)),
            (
                "selective_read_latency",
                serde_json::to_value(&selective_read_latency),
            ),
        ],
    )
    .expect("update bench artifact");
    println!(
        "\n[artifact] {path}\n  ladder: {total_steps} steps in {ladder_seconds:.3} s \
         (median of 3 calibrated windows) = {steps_per_sec:.0} steps/s\n  \
         encode: {logical_mb:.0} MiB logical through the parallel stage = {encode_mbps:.0} MB/s\n  \
         selective read: {:.1} us by-level query latency",
        selective_read_latency * 1e6
    );

    println!("\nall machine-room invariants hold");
}
