//! The paper's calibration workflow (Fig. 9) as a library user would run
//! it: measure an AMR run, pick the Eq. (3)/Appendix A starting point,
//! and let the golden-section search fit `dataset_growth`.
//!
//! ```text
//! cargo run --release --example model_calibration
//! ```

use amr_proxy_io::amrproxy::{case4, run_simulation};
use amr_proxy_io::model::{
    calibrate_two_parameter, default_growth_guess, translate, TranslationModel,
};

fn main() {
    // The paper's pivot: case4 at cfl = 0.4 with 4 AMR levels.
    let cfg = case4(0.4, 4, 80);
    println!("running {} ...", cfg.name);
    let amr = run_simulation(&cfg, None, None);
    let target = amr.per_step_bytes();
    println!(
        "measured {} output steps, first {:.4e} B, last {:.4e} B",
        target.len(),
        target.first().unwrap(),
        target.last().unwrap()
    );

    // Starting point from the paper's guidance.
    let inputs = amr.config.amr_inputs();
    let guess = TranslationModel {
        f: 24.0,
        dataset_growth: default_growth_guess(inputs.cfl, inputs.max_level),
        compute_time: 0.0,
        meta_size: 0,
        compression_ratio: 1.0,
    };
    let mut base = translate(&inputs, &guess);
    base.num_dumps = target.len() as u32;
    println!(
        "\ninitial guess: f = {}, dataset_growth = {:.4}",
        guess.f, guess.dataset_growth
    );

    let cal = calibrate_two_parameter(&base, &target, inputs.n_cell, 2);
    println!("\ncalibration trace ({} evaluations):", cal.trace.len());
    for (i, e) in cal.trace.iter().enumerate().step_by(4) {
        println!(
            "  eval {i:>3}: growth = {:.6}  rmse = {:.4e}",
            e.dataset_growth, e.rmse
        );
    }
    println!(
        "\nconverged: dataset_growth = {:.6}, f = {:.2}, rmse = {:.4e}",
        cal.dataset_growth, cal.f, cal.rmse
    );
    println!("paper reference: dataset_growth = 1.013075, f in [23, 25] for its Summit pivot");
}
