//! The scenario plane end-to-end: one Sedov workload crossed with the
//! campaign shapes the phase-pipeline engine opens — mid-run failure +
//! restart, checkpoint cadence, and in-run analysis — each with its
//! invariants asserted, so this example doubles as the scenario smoke
//! suite in CI.
//!
//! Demonstrated workload shapes (beyond the legacy `write[;restart]`):
//!
//! 1. **`write;fail@10;restart`** — the run crashes after step 10 and
//!    recovers from its newest plot dump. *Invariant:* the failure
//!    re-pays compute for the lost steps but never re-writes a dump it
//!    already flushed (write plane byte-identical to the clean run).
//! 2. **`write;check@4;fail@10;restart`** — same failure under a
//!    checkpoint cadence. *Invariant:* denser restart points shrink the
//!    replay (fewer re-computed steps, less re-paid compute wall), and
//!    the recovery read fetches checkpoint state (4 components), not a
//!    22-variable plot dump.
//! 3. **`write;analyze_every:2:level:1`** — every second plot dump is
//!    analyzed in-situ. *Invariant:* the analysis read bursts interleave
//!    with subsequent write bursts on the simulated timeline instead of
//!    trailing the campaign.
//! 4. **`write;fail@17;restart;analyze:level:2,reorg`** — the issue's
//!    combined spelling, end-to-end: failure, recovery, then a trailing
//!    reorganized analysis read, all priced on one clock.
//!
//! ```text
//! cargo run --release --example scenario_sweep
//! ```

use amr_proxy_io::amrproxy::{
    run_campaign_serial, run_campaign_timed, CastroSedovConfig, Engine, ExperimentSpec, RunSummary,
    Scenario,
};
use amr_proxy_io::io_engine::ReadSelection;
use amr_proxy_io::iosim::StorageModel;

fn base(max_step: u64) -> CastroSedovConfig {
    CastroSedovConfig {
        name: "sedov".into(),
        engine: Engine::Oracle,
        n_cell: 128,
        max_level: 2,
        max_step,
        plot_int: 4,
        nprocs: 8,
        account_only: true,
        compute_ns_per_cell: 40_000.0,
        ..Default::default()
    }
}

fn row(s: &RunSummary) -> String {
    format!(
        "{:<44} {:>10} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
        s.scenario,
        s.physical_bytes,
        s.restarts,
        s.wall_time,
        s.compute_wall,
        s.read_wall,
        s.selective_read_wall
    )
}

fn main() {
    let storage = StorageModel::ideal(4, 5e7);
    println!("== scenario sweep: one workload, five campaign shapes ==");
    println!(
        "{:<44} {:>10} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "scenario", "phys_B", "restarts", "wall_s", "compute", "read_s", "sel_rd_s"
    );

    let scenarios = vec![
        Scenario::write_only(),
        Scenario::parse("write;fail@10;restart").unwrap(),
        Scenario::parse("write;check@4;fail@10;restart").unwrap(),
        Scenario::in_run_analysis(2, ReadSelection::Level(1)),
        Scenario::parse("write;fail@17;restart;analyze:level:2,reorg").unwrap(),
    ];
    let matrix = ExperimentSpec::over("scenario_sweep", &[base(20)])
        .scenarios(&scenarios)
        .compile_configs()
        .expect("unique run labels");
    let summaries = run_campaign_timed(&matrix, &storage);
    for s in &summaries {
        println!("{}", row(s));
    }
    let clean = &summaries[0];
    let failed = &summaries[1];
    let checkpointed = &summaries[2];
    let insitu = &summaries[3];
    let combined = &summaries[4];

    // --- Invariant 1: fail@10;restart re-pays compute, not dumps. -----
    assert_eq!(
        failed.total_bytes, clean.total_bytes,
        "logical write plane is failure-invariant"
    );
    assert_eq!(
        failed.physical_bytes, clean.physical_bytes,
        "no dump is flushed twice"
    );
    assert_eq!(failed.physical_files, clean.physical_files);
    assert_eq!(failed.restarts, 1);
    assert!(failed.read_bytes > 0, "the recovery read is priced");
    assert!(
        failed.compute_wall > clean.compute_wall,
        "steps 9..=10 are re-computed: {} vs {}",
        failed.compute_wall,
        clean.compute_wall
    );
    assert!(failed.wall_time > clean.wall_time);
    println!(
        "\n[1] fail@10;restart: +{:.3}s wall (re-paid compute {:.3}s, recovery read {:.3}s), \
         write plane byte-identical",
        failed.wall_time - clean.wall_time,
        failed.compute_wall - clean.compute_wall,
        failed.read_wall
    );

    // --- Invariant 2: checkpoint cadence shrinks the replay. ----------
    // fail@10 restarts from step 8 in both shapes (plot dump at 8 vs
    // checkpoint at 8), so the replay window ties — but the checkpointed
    // run recovers 4-component state instead of a 22-variable plot dump.
    assert!(checkpointed.check_bytes > 0, "checkpoints are priced");
    assert!(checkpointed.check_wall > 0.0);
    assert!(
        checkpointed.read_bytes < failed.read_bytes,
        "checkpoint restart reads state, not plot data: {} vs {}",
        checkpointed.read_bytes,
        failed.read_bytes
    );
    // Sparse plots make the cadence win visible in the replay itself:
    // with dumps only at steps 0 and 20, a failure at 10 replays all 10
    // steps — unless checkpoints provide a nearer restart point.
    let sparse = CastroSedovConfig {
        plot_int: 20,
        ..base(20)
    };
    let replay_matrix = ExperimentSpec::over("replay", &[sparse])
        .scenarios(&[
            Scenario::parse("write;fail@10;restart").unwrap(),
            Scenario::parse("write;check@4;fail@10;restart").unwrap(),
        ])
        .compile_configs()
        .expect("unique run labels");
    let replay = run_campaign_serial(&replay_matrix);
    assert!(
        replay[1].compute_wall < replay[0].compute_wall,
        "check@4 must shrink the replayed compute: {} vs {}",
        replay[1].compute_wall,
        replay[0].compute_wall
    );
    println!(
        "[2] check@4 under sparse plots: replayed compute {:.3}s -> {:.3}s, recovery read {} -> {} B",
        replay[0].compute_wall,
        replay[1].compute_wall,
        replay[0].read_bytes,
        replay[1].read_bytes
    );

    // --- Invariant 3: in-run analysis interleaves with writes. --------
    assert!(insitu.selective_read_bytes > 0);
    assert_eq!(
        insitu.total_bytes, clean.total_bytes,
        "analysis never disturbs the write plane"
    );
    // 6 plot dumps (steps 0..20 by 4) + 3 in-run analyses (dumps 2,4,6).
    let insitu_result = amr_proxy_io::amrproxy::run_simulation(&matrix[3], None, Some(&storage));
    let bursts = insitu_result.timeline.bursts();
    assert_eq!(bursts.len(), 9, "6 write + 3 analysis bursts");
    let steps: Vec<u32> = bursts.iter().map(|b| b.step).collect();
    assert_eq!(
        steps,
        vec![1, 2, 2, 3, 4, 4, 5, 6, 6],
        "analysis bursts sit between write bursts, not after them"
    );
    println!(
        "[3] analyze_every:2:level:1: 3 in-run reads interleaved ({} B selective, {:.3}s), \
         burst order {:?}",
        insitu.selective_read_bytes, insitu.selective_read_wall, steps
    );

    // --- Invariant 4: the issue's combined spelling end-to-end. -------
    assert_eq!(combined.restarts, 1);
    assert!(combined.read_bytes > 0, "recovery read priced");
    assert!(combined.reorg_wall > 0.0, "reorganization pass priced");
    assert!(combined.selective_read_bytes > 0, "level:2 read delivered");
    assert!(combined.reorganized);
    assert_eq!(
        combined.total_bytes, clean.total_bytes,
        "failure + analysis leave the write plane untouched"
    );
    println!(
        "[4] write;fail@17;restart;analyze:level:2,reorg: recovery {:.3}s + reorg {:.3}s + \
         selective read {:.3}s on one clock ({:.3}s total)",
        combined.read_wall, combined.reorg_wall, combined.selective_read_wall, combined.wall_time
    );

    // --- Legacy spelling compatibility (the deprecation contract). ----
    let legacy = CastroSedovConfig {
        read_after_write: true,
        ..base(20)
    };
    let explicit = CastroSedovConfig {
        scenario: Some(Scenario::write_restart()),
        ..base(20)
    };
    let legacy_s = run_campaign_timed(&[legacy, explicit], &storage);
    assert_eq!(legacy_s[0], {
        let mut e = legacy_s[1].clone();
        e.name = legacy_s[0].name.clone();
        e
    });
    println!(
        "[5] legacy read_after_write == explicit write;restart (wall {:.3}s both)",
        legacy_s[0].wall_time
    );

    println!("\nall scenario invariants hold");
}
