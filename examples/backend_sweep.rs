//! Backend sweep: the same Sedov campaign slice pushed through every
//! io-engine backend, sweeping aggregation ratios {1, 4, 16, N}, with
//! per-backend dump times from the storage model.
//!
//! ```text
//! cargo run --release --example backend_sweep
//! ```

use amr_proxy_io::amrproxy::{run_campaign_timed, CastroSedovConfig, Engine, ExperimentSpec};
use amr_proxy_io::io_engine::BackendSpec;
use amr_proxy_io::iosim::StorageModel;

fn main() {
    let nprocs = 32;
    let base = CastroSedovConfig {
        name: "sedov256".into(),
        engine: Engine::Oracle,
        n_cell: 256,
        max_level: 2,
        max_step: 24,
        plot_int: 2,
        nprocs,
        account_only: true,
        compute_ns_per_cell: 2_000.0,
        ..Default::default()
    };

    // Aggregation ratios 1, 4, 16, N (ratio N -> a single subfile), plus
    // the N-to-N baseline and the deferred burst-buffer path.
    let backends = [
        BackendSpec::FilePerProcess,
        BackendSpec::Aggregated(1),
        BackendSpec::Aggregated(4),
        BackendSpec::Aggregated(16),
        BackendSpec::Aggregated(nprocs),
        BackendSpec::Deferred(1),
    ];
    let matrix = ExperimentSpec::over("backend_sweep", &[base])
        .backends(&backends)
        .compile_configs()
        .expect("unique run labels");
    println!(
        "running {} scenarios ({} backends) on a 1/9-Summit storage model ...\n",
        matrix.len(),
        backends.len()
    );
    let storage = StorageModel::summit_alpine(1.0 / 9.0);
    let summaries = run_campaign_timed(&matrix, &storage);

    println!(
        "{:<24} {:>10} {:>12} {:>12} {:>12} {:>14}",
        "scenario", "backend", "bytes", "files", "wall (s)", "mean dump (s)"
    );
    let mut fpp_wall = None;
    for s in &summaries {
        let dumps = s.series.len().max(1) as f64;
        println!(
            "{:<24} {:>10} {:>12} {:>12} {:>12.4} {:>14.4}",
            s.name,
            s.backend,
            s.total_bytes,
            s.physical_files,
            s.wall_time,
            s.wall_time / dumps,
        );
        if s.backend == "fpp" {
            fpp_wall = Some(s.wall_time);
        }
    }

    if let Some(fpp) = fpp_wall {
        println!("\nspeedup over the N-to-N baseline:");
        for s in &summaries {
            println!("  {:>10}: {:>6.3}x", s.backend, fpp / s.wall_time);
        }
    }
    // The workload's data production is backend-invariant; only the
    // physical layout and timing move.
    let bytes: Vec<u64> = summaries.iter().map(|s| s.total_bytes).collect();
    assert!(bytes.windows(2).all(|w| w[0] == w[1]), "bytes invariant");
    println!("\nbyte accounting identical across all backends: OK");
}
