//! Backend × codec sweep: the Sedov campaign slice pushed through every
//! io-engine backend crossed with every compression codec, reporting
//! physical bytes, logical bytes, and wall-clock per cell.
//!
//! ```text
//! cargo run --release --example backend_codec_sweep
//! ```

use amr_proxy_io::amrproxy::{run_campaign_timed, CastroSedovConfig, Engine, ExperimentSpec};
use amr_proxy_io::io_engine::{BackendSpec, CodecSpec};
use amr_proxy_io::iosim::StorageModel;

fn main() {
    let nprocs = 32;
    let base = CastroSedovConfig {
        name: "sedov256".into(),
        engine: Engine::Oracle,
        n_cell: 256,
        max_level: 2,
        max_step: 24,
        plot_int: 2,
        nprocs,
        account_only: true,
        compute_ns_per_cell: 2_000.0,
        ..Default::default()
    };

    let backends = [
        BackendSpec::FilePerProcess,
        BackendSpec::Aggregated(4),
        BackendSpec::Deferred(1),
    ];
    let codecs = [
        CodecSpec::Identity,
        CodecSpec::Rle(2.0),
        CodecSpec::LossyQuant(8),
    ];
    let matrix = ExperimentSpec::over("backend_codec_sweep", &[base])
        .backends(&backends)
        .codecs(&codecs)
        .compile_configs()
        .expect("unique run labels");
    println!(
        "running {} scenarios ({} backends x {} codecs) on a bandwidth-bound storage model ...\n",
        matrix.len(),
        backends.len(),
        codecs.len()
    );
    // A deliberately bandwidth-bound configuration: with Alpine-scale
    // peaks the transfers vanish and only the codec CPU cost would show.
    let storage = StorageModel::ideal(8, 2.5e8);
    let summaries = run_campaign_timed(&matrix, &storage);

    println!(
        "{:<10} {:>10} {:>14} {:>14} {:>7} {:>10} {:>14}",
        "backend", "codec", "logical", "physical", "ratio", "wall (s)", "wall/cell (ns)"
    );
    for s in &summaries {
        println!(
            "{:<10} {:>10} {:>14} {:>14} {:>6.2}x {:>10.4} {:>14.3}",
            s.backend,
            s.codec,
            s.logical_bytes,
            s.physical_bytes,
            s.compression_ratio(),
            s.wall_time,
            s.wall_per_cell() * 1e9,
        );
    }

    let of = |backend: &str, codec: &str| {
        summaries
            .iter()
            .find(|s| s.backend == backend && s.codec == codec)
            .expect("scenario present")
    };
    println!("\nspeedup of quant:8 over identity, per backend:");
    for b in ["fpp", "agg:4", "deferred:1"] {
        let id = of(b, "identity");
        let q = of(b, "quant:8");
        println!(
            "  {:>10}: {:>6.3}x wall, {:>6.2}x bytes",
            b,
            id.wall_time / q.wall_time,
            id.physical_bytes as f64 / q.physical_bytes as f64
        );
        assert!(q.physical_bytes < id.physical_bytes);
        assert!(q.wall_time < id.wall_time, "{b}: compression must pay off");
    }
    // The workload's logical data production is invariant across the
    // whole backend x codec matrix.
    let logical: Vec<u64> = summaries.iter().map(|s| s.total_bytes).collect();
    assert!(logical.windows(2).all(|w| w[0] == w[1]), "bytes invariant");
    println!("\nlogical byte accounting identical across all 9 scenarios: OK");
}
